(* Sp_fault injection: deterministic plans, disk/net/door injection
   points, retry and failover behaviour, and trace visibility. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module D = Sp_blockdev.Disk

let bs = D.block_size

(* --- the plan machinery itself --- *)

let test_rng_determinism () =
  let draw seed = List.init 16 (fun _ -> Sp_fault.Rng.int (Sp_fault.Rng.create seed) 1000) in
  let a = Sp_fault.Rng.create 42 and b = Sp_fault.Rng.create 42 in
  Alcotest.(check (list int))
    "same seed, same stream"
    (List.init 16 (fun _ -> Sp_fault.Rng.int a 1000))
    (List.init 16 (fun _ -> Sp_fault.Rng.int b 1000));
  Alcotest.(check bool) "different seeds diverge" true (draw 1 <> draw 2)

let outcomes plan n =
  Sp_fault.with_plan plan (fun () ->
      List.init n (fun _ -> Sp_fault.consult ~point:"p" ~label:"x"))

let test_plan_replays () =
  Util.in_world (fun () ->
      let mk () = Sp_fault.plan ~seed:5 [ Sp_fault.rule ~point:"p" ~prob:0.3 Sp_fault.Io_error ] in
      let a = outcomes (mk ()) 200 and b = outcomes (mk ()) 200 in
      Alcotest.(check bool) "probabilistic schedule replays" true (a = b);
      let fired = List.length (List.filter (fun o -> o <> Sp_fault.Pass) a) in
      Alcotest.(check bool) "some but not all fire" true (fired > 10 && fired < 190))

let test_after_count_label () =
  Util.in_world (fun () ->
      let plan =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"p" ~label:"diskA" ~after:3 ~count:2 Sp_fault.Io_error ]
      in
      Sp_fault.with_plan plan (fun () ->
          let hits label =
            List.init 10 (fun _ -> Sp_fault.consult ~point:"p" ~label)
            |> List.mapi (fun i o -> (i, o))
            |> List.filter_map (fun (i, o) -> if o <> Sp_fault.Pass then Some i else None)
          in
          Alcotest.(check (list int)) "wrong label never fires" [] (hits "diskB-0");
          Alcotest.(check (list int))
            "fires on ops 4 and 5 of the matching label only" [ 3; 4 ]
            (hits "node0/diskA"));
      Alcotest.(check int) "fired counter" 2 (Sp_fault.fired plan))

let test_disarmed_is_pass () =
  Alcotest.(check bool) "no plan armed" false (Sp_fault.active ());
  Alcotest.(check bool) "consult passes" true
    (Sp_fault.consult ~point:"disk.write" ~label:"any" = Sp_fault.Pass);
  Alcotest.(check int) "nothing injected" 0 (Sp_fault.injected ())

(* --- disk injection --- *)

let test_transient_disk_error () =
  Util.in_world (fun () ->
      let disk = D.create ~label:"inj-disk0" ~blocks:16 () in
      D.write disk 3 (Bytes.make bs 'a');
      let before = Sp_sim.Metrics.faults_injected () in
      let plan =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"disk.read" ~label:"inj-disk0" ~count:1 Sp_fault.Io_error ]
      in
      Sp_fault.with_plan plan (fun () ->
          Alcotest.(check bool) "first read fails" true
            (try
               ignore (D.read disk 3);
               false
             with Sp_core.Fserr.Io_error _ -> true);
          (* Transient: the very next read succeeds. *)
          Alcotest.(check char) "second read succeeds" 'a' (Bytes.get (D.read disk 3) 0));
      Alcotest.(check int) "metrics counted the fault" (before + 1)
        (Sp_sim.Metrics.faults_injected ()))

let test_torn_write () =
  Util.in_world (fun () ->
      let disk = D.create ~label:"inj-torn0" ~blocks:16 () in
      D.write disk 5 (Bytes.make bs 'o');
      let plan =
        Sp_fault.plan ~seed:9
          [ Sp_fault.rule ~point:"disk.write" ~label:"inj-torn0" ~count:1 Sp_fault.Torn_write ]
      in
      Sp_fault.with_plan plan (fun () -> D.write disk 5 (Bytes.make bs 'n'));
      let b = D.read disk 5 in
      let cut = ref 0 in
      while !cut < bs && Bytes.get b !cut = 'n' do incr cut done;
      Alcotest.(check bool) "a strict prefix of the new data persisted" true
        (!cut > 0 && !cut < bs);
      (* The tail still holds the previous contents, not zeros. *)
      for i = !cut to bs - 1 do
        if Bytes.get b i <> 'o' then Alcotest.fail "old tail clobbered"
      done;
      (* An untouched write afterwards is whole again. *)
      D.write disk 5 (Bytes.make bs 'w');
      Alcotest.(check char) "later writes intact" 'w' (Bytes.get (D.read disk 5) (bs - 1)))

let test_fail_stop_at_nth_write () =
  Util.in_world (fun () ->
      let disk = D.create ~label:"inj-crash0" ~blocks:16 () in
      let plan =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"disk.write" ~label:"inj-crash0" ~after:2 ~count:1
              Sp_fault.Fail_stop ]
      in
      Alcotest.(check bool) "third write crashes" true
        (try
           Sp_fault.with_plan plan (fun () ->
               for i = 0 to 5 do D.write disk i (Bytes.make bs 'x') done);
           false
         with Sp_fault.Crash _ -> true);
      (* Writes before the crash point persisted; the crashing one did not. *)
      Alcotest.(check char) "write 1 persisted" 'x' (Bytes.get (D.read disk 1) 0);
      Alcotest.(check char) "write 3 never happened" '\000' (Bytes.get (D.read disk 3) 0))

(* --- door injection --- *)

let test_door_call_fault () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "inj-vmm-door" in
      let sfs =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:"inj-door-sfs" ~same_domain:false
          (Util.fresh_disk ())
      in
      let f = S.create sfs (Util.name "d") in
      let plan =
        Sp_fault.plan [ Sp_fault.rule ~point:"door.call" ~count:1 Sp_fault.Io_error ]
      in
      Alcotest.(check bool) "door call raises Injected" true
        (try
           Sp_fault.with_plan plan (fun () -> ignore (F.stat f));
           false
         with Sp_fault.Injected _ -> true);
      Alcotest.(check int) "door works again after the plan" 0 (F.stat f).Sp_vm.Attr.len)

(* --- network injection: retry, partition, trace --- *)

let make_dfs_world suffix =
  let net = Sp_dfs.Net.create () in
  let vmm_a = Sp_vm.Vmm.create ~node:"alpha" ("inj-vmm" ^ suffix) in
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~node:"alpha" ~vmm:vmm_a
      ~name:("inj-sfs" ^ suffix) ~same_domain:false (Util.fresh_disk ())
  in
  let dfs =
    Sp_dfs.Dfs.make_server ~node:"alpha" ~net ~vmm:vmm_a ~name:("inj-dfs" ^ suffix) ()
  in
  S.stack_on dfs sfs;
  let import = Sp_dfs.Dfs.import ~net ~client_node:"beta" dfs in
  (net, sfs, import)

let test_net_drop_retried () =
  Util.in_world (fun () ->
      let net, sfs, import = make_dfs_world "-drop" in
      let f = S.create sfs (Util.name "r") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "remote data"));
      F.sync f;
      let before = Sp_sim.Metrics.net_retries () in
      let plan =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"net.rpc" ~label:"beta->alpha" ~count:2 Sp_fault.Drop ]
      in
      Sp_fault.with_plan plan (fun () ->
          (* Two dropped attempts, then success — invisible to the caller. *)
          Util.check_str "read succeeds despite drops" "remote data"
            (F.read (S.open_file import (Util.name "r")) ~pos:0 ~len:11));
      Alcotest.(check bool) "retries counted on the link" true
        ((Sp_dfs.Net.stats net).Sp_dfs.Net.retries >= 2);
      Alcotest.(check bool) "retries counted in metrics" true
        (Sp_sim.Metrics.net_retries () >= before + 2))

let test_partition_gives_up () =
  Util.in_world (fun () ->
      let _net, sfs, import = make_dfs_world "-part" in
      let f = S.create sfs (Util.name "p") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "unreachable"));
      F.sync f;
      let plan = Sp_fault.plan (Sp_fault.partition ~a:"alpha" ~b:"beta") in
      Sp_fault.with_plan plan (fun () ->
          Alcotest.(check bool) "partition surfaces as Io_error after retries" true
            (try
               ignore (S.open_file import (Util.name "p"));
               false
             with Sp_core.Fserr.Io_error _ -> true));
      (* Partition healed: the same open now works. *)
      ignore (S.open_file import (Util.name "p")))

let test_faults_visible_in_trace () =
  Util.in_world (fun () ->
      let _net, sfs, import = make_dfs_world "-trace" in
      let f = S.create sfs (Util.name "t") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "x"));
      F.sync f;
      let plan =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"net.rpc" ~label:"beta->alpha" ~count:1 Sp_fault.Drop ]
      in
      let (), trace =
        Sp_trace.with_tracing ~root:"fault-test" (fun () ->
            Sp_fault.with_plan plan (fun () ->
                ignore (F.read (S.open_file import (Util.name "t")) ~pos:0 ~len:1)))
      in
      let names = List.map (fun i -> i.Sp_trace.in_name) trace.Sp_trace.tr_instants in
      Alcotest.(check bool) "drop recorded as instant" true
        (List.mem "fault:drop" names);
      Alcotest.(check bool) "retry recorded as instant" true
        (List.mem "net.retry" names);
      (* Instants survive into the Chrome export. *)
      let file = Filename.temp_file "spring_fault" ".json" in
      Sp_trace.write_chrome_json file trace;
      let ic = open_in file in
      let len = in_channel_length ic in
      let json = really_input_string ic len in
      close_in ic;
      Sys.remove file;
      Alcotest.(check bool) "chrome json has instant events" true
        (let contains s sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         contains json "\"ph\": \"i\"" || contains json "\"ph\":\"i\""))

(* --- mirrorfs failover under injected faults --- *)

let test_mirror_auto_failover () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "inj-vmm-mirror" in
      let mk n lbl =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:n ~same_domain:false
          (Util.fresh_disk ~label:lbl ())
      in
      let mirror = Sp_mirrorfs.Mirrorfs.make ~vmm ~name:"inj-mirror" () in
      S.stack_on mirror (mk "inj-mir-a" "inj-mdiskA");
      S.stack_on mirror (mk "inj-mir-b" "inj-mdiskB");
      let f = S.create mirror (Util.name "x") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "mirrored"));
      F.sync f;
      Alcotest.(check bool) "healthy at first" true
        (Sp_mirrorfs.Mirrorfs.degraded mirror = None);
      (* Primary's device starts failing every write. *)
      let plan =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"disk.write" ~label:"inj-mdiskA" Sp_fault.Io_error ]
      in
      Sp_fault.with_plan plan (fun () ->
          ignore (F.write f ~pos:0 (Util.bytes_of_string "MIRRORED"));
          F.sync f);
      Alcotest.(check bool) "primary degraded automatically" true
        (Sp_mirrorfs.Mirrorfs.degraded mirror = Some Sp_mirrorfs.Mirrorfs.Primary);
      Alcotest.(check bool) "failover counted" true
        (Sp_mirrorfs.Mirrorfs.failovers mirror >= 1);
      Util.check_str "write survived on the secondary" "MIRRORED" (F.read f ~pos:0 ~len:8);
      (* Device repaired: resync the replica and restore redundancy. *)
      Sp_mirrorfs.Mirrorfs.repair mirror (Util.name "x");
      Sp_mirrorfs.Mirrorfs.set_degraded mirror None;
      Alcotest.(check bool) "replicas identical after repair" true
        (Sp_mirrorfs.Mirrorfs.verify mirror (Util.name "x"));
      Util.check_str "reads fine fully mirrored again" "MIRRORED" (F.read f ~pos:0 ~len:8))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "plan replays bit-identically" `Quick test_plan_replays;
    Alcotest.test_case "after/count/label selectors" `Quick test_after_count_label;
    Alcotest.test_case "disarmed path is a no-op" `Quick test_disarmed_is_pass;
    Alcotest.test_case "transient disk error" `Quick test_transient_disk_error;
    Alcotest.test_case "torn write keeps old tail" `Quick test_torn_write;
    Alcotest.test_case "fail-stop at nth write" `Quick test_fail_stop_at_nth_write;
    Alcotest.test_case "door.call fault" `Quick test_door_call_fault;
    Alcotest.test_case "net drop retried transparently" `Quick test_net_drop_retried;
    Alcotest.test_case "partition exhausts retries" `Quick test_partition_gives_up;
    Alcotest.test_case "faults visible in trace" `Quick test_faults_visible_in_trace;
    Alcotest.test_case "mirrorfs auto-failover + repair" `Quick test_mirror_auto_failover;
  ]
