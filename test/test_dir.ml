(* Sp_dir and its integration: indexed directories (flat/indexed
   equivalence, cold remount, fsck's dirindex category, crash sweep over
   the htree split) and name-cache coherence against namespace mutations
   and supervised restart. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module DL = Sp_sfs.Disk_layer
module C = Sp_naming.Context
module NC = Sp_naming.Name_cache
module N = Sp_naming.Sname
module Disk = Sp_blockdev.Disk

let uid = ref 0

let tag p =
  incr uid;
  Printf.sprintf "%s%d" p !uid

(* A bare disk-layer volume with a directory "d"; [dir_index:false]
   keeps it flat past the upgrade threshold. *)
let fresh_fs ?(blocks = 4096) ?(journal = false) ?(dir_index = true) p =
  let t = tag p in
  let disk = Disk.create ~label:(t ^ ".dev") ~blocks () in
  DL.mkfs ~journal disk;
  let fs = DL.mount ~dir_index ~name:t disk in
  S.mkdir fs (N.of_string "d");
  (disk, fs)

let fname i = Printf.sprintf "d/n%03d" i

(* ------------------------------------------------------------------ *)
(* Indexed directories                                                 *)
(* ------------------------------------------------------------------ *)

(* Crossing the upgrade threshold must not change observable contents,
   on the live mount or after a cold remount. *)
let test_upgrade_preserves_contents () =
  Util.in_world (fun () ->
      let disk, fs = fresh_fs "up" in
      let n = 200 in
      for i = 0 to n - 1 do
        ignore (S.create fs (N.of_string (fname i)))
      done;
      let expect =
        List.init n (fun i -> Printf.sprintf "n%03d" i) |> List.sort compare
      in
      Alcotest.(check (list string))
        "all entries listed" expect
        (S.listdir fs (N.of_string "d"));
      for i = 0 to n - 1 do
        ignore (S.open_file fs (N.of_string (fname i)))
      done;
      for i = 0 to n - 1 do
        if i mod 4 = 0 then S.remove fs (N.of_string (fname i))
      done;
      let expect =
        List.filter (fun s -> int_of_string (String.sub s 1 3) mod 4 <> 0) expect
      in
      Alcotest.(check (list string))
        "after removals" expect
        (S.listdir fs (N.of_string "d"));
      S.sync fs;
      let fs' = DL.mount ~name:(tag "up-re") disk in
      Alcotest.(check (list string))
        "cold remount agrees" expect
        (S.listdir fs' (N.of_string "d")))

(* Cursor batches partition the listing: bounded, disjoint, complete,
   terminated by the cookie (never by an empty batch). *)
let test_cursor_batches () =
  Util.in_world (fun () ->
      let _disk, fs = fresh_fs "cur" in
      for i = 0 to 199 do
        ignore (S.create fs (N.of_string (fname i)))
      done;
      let rec drain cookie acc =
        let batch, next = S.readdir fs (N.of_string "d") ~cookie ~limit:7 in
        Alcotest.(check bool) "batch bounded" true (List.length batch <= 7);
        let acc = acc @ batch in
        match next with Some c -> drain c acc | None -> acc
      in
      let got = drain 0 [] |> List.sort compare in
      Alcotest.(check (list string))
        "batches cover the directory"
        (List.init 200 (fun i -> Printf.sprintf "n%03d" i) |> List.sort compare)
        got)

(* Random create/remove/rename schedules observe identically on a flat
   (index disabled) and an indexed volume, live and after remount. *)
let prop_flat_indexed_equivalence =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 80) (triple (int_range 0 2) (int_range 0 47) (int_range 0 47)))
  in
  Util.qcheck_case ~count:12 "flat/indexed equivalence" gen (fun ops ->
      Util.in_world (fun () ->
          let disk_f, flat = fresh_fs ~dir_index:false "eqf" in
          let disk_i, indexed = fresh_fs ~dir_index:true "eqi" in
          (* Both volumes start past the upgrade threshold. *)
          List.iter
            (fun fs ->
              for i = 0 to 139 do
                ignore (S.create fs (N.of_string (fname i)))
              done)
            [ flat; indexed ];
          let nm k = N.of_string (Printf.sprintf "d/q%02d" k) in
          let apply fs op =
            try
              (match op with
              | 0, k, _ -> ignore (S.create fs (nm k))
              | 1, k, _ -> S.remove fs (nm k)
              | _, k, k' -> S.rename fs ~src:(nm k) ~dst:(nm k'))
              ; `Ok
            with _ -> `Err
          in
          let ok = ref true in
          List.iter
            (fun op ->
              if apply flat op <> apply indexed op then ok := false)
            ops;
          let agree a b = List.sort compare a = List.sort compare b in
          if not (agree (S.listdir flat (N.of_string "d"))
                    (S.listdir indexed (N.of_string "d")))
          then ok := false;
          for k = 0 to 47 do
            let seen fs =
              match S.open_file fs (nm k) with
              | _ -> true
              | exception _ -> false
            in
            if seen flat <> seen indexed then ok := false
          done;
          S.sync flat;
          S.sync indexed;
          let flat' = DL.mount ~name:(tag "eqf-re") disk_f in
          let indexed' = DL.mount ~name:(tag "eqi-re") disk_i in
          if not (agree (S.listdir flat' (N.of_string "d"))
                    (S.listdir indexed' (N.of_string "d")))
          then ok := false;
          !ok))

(* ------------------------------------------------------------------ *)
(* Fsck: the dirindex category                                         *)
(* ------------------------------------------------------------------ *)

let test_fsck_dirindex () =
  Util.in_world (fun () ->
      let disk, fs = fresh_fs "fd" in
      for i = 0 to 199 do
        ignore (S.create fs (N.of_string (fname i)))
      done;
      S.sync fs;
      Alcotest.(check bool) "clean volume has no problems" true
        (Sp_sfs.Fsck.check disk = []);
      (* Zero a used leaf slot behind the fs's back: the header's entry
         count now disagrees with the leaves. *)
      let smashed = ref false in
      for b = 0 to Disk.block_count disk - 1 do
        if not !smashed then begin
          let blk = Disk.read disk b in
          if Sp_dir.Index.is_leaf blk then
            match Sp_dir.Entry.decode blk 64 with
            | Some _ ->
                Bytes.blit Sp_dir.Entry.free_slot 0 blk 64
                  Sp_dir.Entry.entry_size;
                Disk.write disk b blk;
                smashed := true
            | None -> ()
        end
      done;
      Alcotest.(check bool) "found a populated leaf to smash" true !smashed;
      let dirindex =
        List.filter
          (function Sp_sfs.Fsck.Dir_index _ -> true | _ -> false)
          (Sp_sfs.Fsck.check disk)
      in
      Alcotest.(check bool) "fsck reports a dirindex problem" true
        (dirindex <> []))

(* ------------------------------------------------------------------ *)
(* Crash sweep over the htree split                                    *)
(* ------------------------------------------------------------------ *)

(* Drive a directory from flat through the upgrade and first growth;
   two syncs put device writes both before and after the split. *)
let split_workload fs =
  for i = 0 to 119 do
    ignore (S.create fs (N.of_string (fname i)))
  done;
  S.sync fs;
  for i = 120 to 159 do
    ignore (S.create fs (N.of_string (fname i)))
  done;
  S.sync fs

let split_writes ~journal =
  Util.in_world (fun () ->
      let disk, fs = fresh_fs ~journal "cw" in
      let before = (Disk.stats disk).Disk.writes in
      split_workload fs;
      (Disk.stats disk).Disk.writes - before)

(* Crash at device write [crash_at] of the split workload; recover and
   return structural fsck problems plus whether the remounted directory
   walks coherently (every listed name opens). *)
let split_point ~journal ~label ~crash_at =
  Util.in_world (fun () ->
      let t = tag label in
      let disk = Disk.create ~label:(t ^ ".dev") ~blocks:4096 () in
      DL.mkfs ~journal ~checksums:false disk;
      let fs = DL.mount ~name:t disk in
      S.mkdir fs (N.of_string "d");
      let plan =
        Sp_fault.plan ~seed:crash_at
          [
            Sp_fault.rule ~point:"disk.write" ~label:(t ^ ".dev")
              ~after:(crash_at - 1) ~count:1 Sp_fault.Fail_stop;
          ]
      in
      (match Sp_fault.with_plan plan (fun () -> split_workload fs) with
      | () -> ()
      | exception Sp_fault.Crash _ -> ());
      ignore (DL.recover disk);
      let problems = Sp_sfs.Fsck.check disk in
      let coherent =
        let fs' = DL.mount ~name:(tag "cw-re") disk in
        match S.listdir fs' (N.of_string "d") with
        | names ->
            List.for_all
              (fun n ->
                match S.open_file fs' (N.of_string ("d/" ^ n)) with
                | _ -> true
                | exception _ -> false)
              names
        (* Before the first commit the consistent cut has no "d" at all. *)
        | exception (Sp_core.Fserr.No_such_file _ | C.Unbound _) -> true
        | exception _ -> false
      in
      (problems, coherent))

let test_split_crash_journaled () =
  let writes = split_writes ~journal:true in
  Alcotest.(check bool) "workload writes the device" true (writes > 0);
  let stride = max 1 (writes / 40) in
  let pt = ref 1 in
  while !pt <= writes do
    let problems, coherent =
      split_point ~journal:true ~label:"cwj" ~crash_at:!pt
    in
    if problems <> [] then
      Alcotest.failf "crash point %d: fsck found %a" !pt Sp_sfs.Fsck.pp_problem
        (List.hd problems);
    if not coherent then
      Alcotest.failf "crash point %d: recovered directory incoherent" !pt;
    pt := !pt + stride
  done

(* Without the journal the same sweep must catch the split mid-flight at
   some point — the control that proves the injector bites. *)
let test_split_crash_unjournaled_control () =
  let writes = split_writes ~journal:false in
  let stride = max 1 (writes / 40) in
  let bad = ref false in
  let pt = ref 1 in
  while (not !bad) && !pt <= writes do
    let problems, coherent =
      split_point ~journal:false ~label:"cwu" ~crash_at:!pt
    in
    if problems <> [] || not coherent then bad := true;
    pt := !pt + stride
  done;
  Alcotest.(check bool)
    "some unjournaled crash point is inconsistent" true !bad

(* ------------------------------------------------------------------ *)
(* Name-cache coherence                                                *)
(* ------------------------------------------------------------------ *)

(* Warm hits on the two-domain stack cross no domains (paper §6.4: open
   overhead "can be eliminated by name caching"). *)
let test_cache_zero_crossings_warm () =
  Util.in_world (fun () ->
      let t = tag "nz" in
      let vmm = Sp_vm.Vmm.create ~node:t ("vmm-" ^ t) in
      let disk = Disk.create ~label:(t ^ ".dev") ~blocks:1024 () in
      DL.mkfs disk;
      let fs =
        Sp_coherency.Spring_sfs.make_split ~node:t ~vmm ~name:t
          ~same_domain:false disk
      in
      ignore (S.create fs (N.of_string "a"));
      let cache = NC.create ~capacity:8 () in
      ignore (S.open_file_cached cache fs (N.of_string "a"));
      let before = Sp_sim.Metrics.snapshot () in
      ignore (S.open_file_cached cache fs (N.of_string "a"));
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "warm open crosses no domains" 0
        d.Sp_sim.Metrics.cross_domain_calls;
      Alcotest.(check int) "hit counted" 1 (NC.stats cache).NC.hits)

(* Stale positives die on remove; stale negatives die on create. *)
let test_cache_mutation_coherence () =
  Util.in_world (fun () ->
      let _disk, fs = fresh_fs "nm" in
      let cache = NC.create ~capacity:8 () in
      ignore (S.create fs (N.of_string "d/a"));
      ignore (S.open_file_cached cache fs (N.of_string "d/a"));
      ignore (S.open_file_cached cache fs (N.of_string "d/a"));
      Alcotest.(check int) "warmed" 1 (NC.stats cache).NC.hits;
      S.remove fs (N.of_string "d/a");
      Alcotest.(check bool) "no stale positive after remove" true
        (match S.open_file_cached cache fs (N.of_string "d/a") with
        | _ -> false
        | exception Sp_core.Fserr.No_such_file _ -> true))

let test_cache_negative_dropped_on_create () =
  Util.in_world (fun () ->
      let _disk, fs = fresh_fs "nn" in
      let cache = NC.create ~capacity:8 () in
      (match S.open_file_cached cache fs (N.of_string "d/b") with
      | _ -> Alcotest.fail "unbound name resolved"
      | exception Sp_core.Fserr.No_such_file _ -> ());
      (match S.open_file_cached cache fs (N.of_string "d/b") with
      | _ -> Alcotest.fail "unbound name resolved"
      | exception Sp_core.Fserr.No_such_file _ -> ());
      Alcotest.(check bool) "negative entry served" true
        ((NC.stats cache).NC.negative_hits >= 1);
      ignore (S.create fs (N.of_string "d/b"));
      (match S.open_file_cached cache fs (N.of_string "d/b") with
      | _ -> ()
      | exception Sp_core.Fserr.No_such_file _ ->
          Alcotest.fail "stale negative served after create"))

(* Rebind through interposition: the cached resolution of d/x must not
   survive an interposer rebinding "d".  Interposition happens in a
   plain context tree (the disk layer's own contexts refuse rebind of a
   populated directory) holding a real file. *)
let test_cache_interpose_coherence () =
  Util.in_world (fun () ->
      let _disk, fs = fresh_fs "ni" in
      let f = S.create fs (N.of_string "d/x") in
      ignore (F.write f ~pos:0 (Bytes.of_string "plain"));
      let mk label =
        C.make ~domain:(Sp_obj.Sdomain.create ("ni:" ^ label)) ~label ()
      in
      let root = mk "root" and sub = mk "sub" in
      C.bind root (N.of_string "d") (C.Context sub);
      C.bind sub (N.of_string "x") (F.File f);
      let cache = NC.create ~capacity:8 () in
      let resolve () =
        match NC.resolve cache root (N.of_string "d/x") with
        | F.File g -> g
        | _ -> Alcotest.fail "d/x is not a file"
      in
      ignore (resolve ());
      ignore (resolve ());
      Alcotest.(check int) "warmed" 1 (NC.stats cache).NC.hits;
      let domain = Sp_obj.Sdomain.create "interposer" in
      ignore
        (Sp_core.Interpose.interpose_names ~domain ~root
           ~at:(N.of_string "d")
           ~select:(fun _ -> true)
           ~wrap:(Sp_core.Interpose.interpose_file ~domain
                    (Sp_core.Interpose.read_only_hooks ()))
           ());
      let g = resolve () in
      Alcotest.(check bool) "interposed file served, not the stale one" true
        (match F.write g ~pos:0 (Bytes.of_string "nope") with
        | _ -> false
        | exception Sp_core.Fserr.Read_only _ -> true))

(* Supervised restart: entries minted by the dead incarnation must be
   fenced, not handed out. *)
let test_cache_supervised_restart () =
  Util.in_world (fun () ->
      let t = tag "ns" in
      let disk = Disk.create ~label:(t ^ ".dev") ~blocks:1024 () in
      DL.mkfs ~journal:true disk;
      let vmm = Sp_vm.Vmm.create ~node:"local" (t ^ ".vmm") in
      let levels =
        [
          Sp_supervise.level ~name:(t ^ ".disk") (fun ~lower:_ ->
              DL.mount ~name:(t ^ ".disk") disk);
          Sp_supervise.level ~name:(t ^ ".coh") (fun ~lower ->
              let fs =
                Sp_coherency.Coherency_layer.make ~vmm ~name:(t ^ ".coh") ()
              in
              S.stack_on fs (Option.get lower);
              fs);
        ]
      in
      let sup = Sp_supervise.supervise ~name:t levels in
      Fun.protect ~finally:(fun () -> Sp_supervise.unsupervise sup)
      @@ fun () ->
      let fs = Sp_supervise.handle sup in
      let f = S.create fs (N.of_string "a") in
      ignore (F.write f ~pos:0 (Bytes.of_string "survives"));
      S.sync fs;
      let cache = NC.create ~capacity:8 () in
      ignore (S.open_file_cached cache fs (N.of_string "a"));
      ignore (S.open_file_cached cache fs (N.of_string "a"));
      Alcotest.(check int) "warmed before the crash" 1 (NC.stats cache).NC.hits;
      Sp_supervise.kill sup (t ^ ".coh");
      (* Trip the supervisor: the next plain call restarts the level and
         bumps the coherence epoch. *)
      ignore (S.open_file fs (N.of_string "a"));
      let g = S.open_file_cached cache fs (N.of_string "a") in
      Util.check_str "fenced entry re-resolved against the new incarnation"
        "survives" (F.read_all g))

let suite =
  [
    Alcotest.test_case "upgrade preserves contents" `Quick
      test_upgrade_preserves_contents;
    Alcotest.test_case "cursor batches" `Quick test_cursor_batches;
    prop_flat_indexed_equivalence;
    Alcotest.test_case "fsck dirindex category" `Quick test_fsck_dirindex;
    Alcotest.test_case "htree split crash sweep (journaled)" `Slow
      test_split_crash_journaled;
    Alcotest.test_case "htree split crash control (unjournaled)" `Slow
      test_split_crash_unjournaled_control;
    Alcotest.test_case "name cache: warm hit crosses no domains" `Quick
      test_cache_zero_crossings_warm;
    Alcotest.test_case "name cache: remove kills stale positive" `Quick
      test_cache_mutation_coherence;
    Alcotest.test_case "name cache: create kills stale negative" `Quick
      test_cache_negative_dropped_on_create;
    Alcotest.test_case "name cache: interpose rebind invalidates" `Quick
      test_cache_interpose_coherence;
    Alcotest.test_case "name cache: supervised restart fences" `Quick
      test_cache_supervised_restart;
  ]
