module F = Sp_core.File
module S = Sp_core.Stackable
module N = Sp_node.Node

let test_node_setup () =
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      Alcotest.(check string) "name" "alpha" (N.name alpha);
      (* All creators registered under the well-known context. *)
      let listed = Sp_naming.Context.list (N.root alpha) (Util.name "fs_creators") in
      Alcotest.(check (list string)) "creators registered"
        [
          "attrfs_creator";
          "coherency_creator";
          "compfs_creator";
          "cryptfs_creator";
          "dfs_creator";
          "integrityfs_creator";
          "mirrorfs_creator";
          "sfs_disk_creator";
          "unionfs_creator";
          "versionfs_creator";
        ]
        listed)

let test_mount_and_stack () =
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      ignore (N.add_disk alpha ~name:"disk0" ~blocks:2048);
      Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");
      let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:"vol0" in
      (* Bound into the node name space. *)
      let via_ns =
        Sp_core.Stack_builder.resolve_fs (N.root alpha) (Util.name "fs/vol0")
      in
      Alcotest.(check string) "exposed at /fs/vol0" sfs.S.sfs_name via_ns.S.sfs_name;
      (* Build the paper's §4.5 stack through creators. *)
      let top =
        N.build_stack alpha ~base:sfs [ ("compfs", "comp0"); ("dfs", "dfs0") ]
      in
      let f = S.create top (Util.name "hello") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "node world"));
      Util.check_str "io through node-built stack" "node world"
        (F.read f ~pos:0 ~len:10))

let test_namespace_per_domain () =
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      let d1 = Sp_obj.Sdomain.create ~node:"alpha" "app1" in
      let ns1 = N.namespace alpha ~domain:d1 in
      Sp_naming.Namespace.customize ns1 (Util.name "private") (Test_naming.Leaf 9);
      (* Visible through ns1, not through the shared root. *)
      (match
         Sp_naming.Context.resolve (Sp_naming.Namespace.as_context ns1)
           (Util.name "private")
       with
      | Test_naming.Leaf 9 -> ()
      | _ -> Alcotest.fail "customisation lost");
      Alcotest.check_raises "shared root unaffected"
        (Sp_naming.Context.Unbound "//private") (fun () ->
          ignore (Sp_naming.Context.resolve (N.root alpha) (Util.name "private"))))

let test_two_nodes_dfs () =
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      let beta = N.World.add_node world "beta" in
      ignore (N.add_disk alpha ~name:"disk0" ~blocks:2048);
      Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");
      let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:"vol0" in
      let dfs = N.build_stack alpha ~base:sfs [ ("dfs", "dfs0") ] in
      let import = Sp_dfs.Dfs.import ~net:(N.World.net world) ~client_node:(N.name beta) dfs in
      let rf = S.create import (Util.name "x") in
      ignore (F.write rf ~pos:0 (Util.bytes_of_string "cross-node"));
      Util.check_str "beta reads alpha's volume" "cross-node"
        (F.read rf ~pos:0 ~len:10))

let suite =
  [
    Alcotest.test_case "node setup" `Quick test_node_setup;
    Alcotest.test_case "mount and stack" `Quick test_mount_and_stack;
    Alcotest.test_case "per-domain namespace" `Quick test_namespace_per_domain;
    Alcotest.test_case "two nodes over dfs" `Quick test_two_nodes_dfs;
  ]
