(* The paper's 4.5 walk-through: DFS stacked on COMPFS stacked on SFS,
   serving a remote client, with CFS interposing on the client side.

   Run with: dune exec examples/full_stack.exe
   Pass [-- --trace-out FILE] to record the run as Chrome trace-event JSON
   (open in chrome://tracing or Perfetto) plus a per-layer profile table. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module N = Sp_node.Node

let path = Sp_naming.Sname.of_string

let step fmt = Printf.printf ("-> " ^^ fmt ^^ "\n%!")

let trace_out =
  let out = ref None in
  Array.iteri
    (fun i a -> if a = "--trace-out" && i + 1 < Array.length Sys.argv then
        out := Some Sys.argv.(i + 1))
    Sys.argv;
  !out

let scenario () =
  let world = N.World.create () in
  let net = N.World.net world in
  let alpha = N.World.add_node world "alpha" in
  let beta = N.World.add_node world "beta" in

  step "alpha: format a disk and mount SFS (coherency layer on disk layer)";
  ignore (N.add_disk alpha ~name:"disk0" ~blocks:4096);
  Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");
  let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:"sfs0" in

  step "alpha: stack COMPFS on SFS, DFS on COMPFS (4.4 configuration method)";
  let compfs = S.instantiate (N.creators alpha) "compfs" ~name:"compfs0" in
  S.stack_on compfs sfs;
  let dfs = S.instantiate (N.creators alpha) "dfs" ~name:"dfs0" in
  S.stack_on dfs compfs;
  Printf.printf "   stack: %s\n"
    (String.concat " -> "
       (List.map (fun l -> l.S.sfs_type) (Sp_core.Stack_builder.layers dfs)));

  step "beta: import the volume over the (simulated) DFS protocol";
  let import = Sp_dfs.Dfs.import ~net ~client_node:(N.name beta) dfs in

  step "beta: create a file and write a compressible report remotely";
  let rf = S.create import (path "report.txt") in
  let text =
    Bytes.of_string
      (String.concat "\n"
         (List.init 1000 (fun i -> Printf.sprintf "section %d: nothing to report" i)))
  in
  ignore (F.write rf ~pos:0 text);
  S.sync import;
  Printf.printf "   wrote %d bytes remotely; net so far: %d messages, %d bytes\n"
    (Bytes.length text)
    (Sp_dfs.Net.stats net).Sp_dfs.Net.messages
    (Sp_dfs.Net.stats net).Sp_dfs.Net.bytes;

  step "alpha: the same bytes are visible through COMPFS (decompressed)...";
  let via_comp = S.open_file compfs (path "report.txt") in
  Printf.printf "   COMPFS view starts: %S\n"
    (Bytes.to_string (F.read via_comp ~pos:0 ~len:30));

  step "...and through SFS as the compressed container";
  let via_sfs = S.open_file sfs (path "report.txt") in
  Printf.printf "   logical %d bytes -> container %d bytes\n" (Bytes.length text)
    (F.stat via_sfs).Sp_vm.Attr.len;

  step "alpha: a local write through COMPFS is coherent with the remote client";
  ignore (F.write via_comp ~pos:0 (Bytes.of_string "REVISED!"));
  Printf.printf "   beta reads: %S\n"
    (Bytes.to_string (F.read rf ~pos:0 ~len:30));

  step "beta: interpose CFS so attributes and data are cached locally";
  let cfs = Sp_cfs.Cfs.make ~node:(N.name beta) ~vmm:(N.vmm beta) ~name:"cfs0" () in
  let local = Sp_cfs.Cfs.interpose cfs rf in
  ignore (F.stat local);
  ignore (F.read local ~pos:0 ~len:100);
  Sp_dfs.Net.reset_stats net;
  for _ = 1 to 50 do
    ignore (F.stat local);
    ignore (F.read local ~pos:0 ~len:100)
  done;
  Printf.printf "   50 cached stats+reads crossed the network %d times\n"
    (Sp_dfs.Net.stats net).Sp_dfs.Net.messages;

  step "done (simulated time %s)"
    (Format.asprintf "%a" Sp_sim.Simclock.pp_duration (Sp_sim.Simclock.now ()))

let () =
  match trace_out with
  | None -> scenario ()
  | Some file ->
      let (), trace = Sp_trace.with_tracing ~root:"full_stack" scenario in
      Format.printf "@.per-layer profile:@.%a@." Sp_trace.pp_profile trace;
      Sp_trace.write_chrome_json file trace;
      Format.printf "chrome trace written to %s@." file
