(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   over the deterministic simulated clock (the substitute for the paper's
   SPARCstation 10 — see DESIGN.md): Table 2, Table 3, the Figure 2
   channel observables, the Figure 5/6 COMPFS modes, and the ablations.

   Part 2 runs Bechamel wall-clock microbenchmarks of the same code paths
   (one Test.make per table/figure group) under the near-zero cost model,
   measuring the OCaml implementation itself. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module W = Sp_benchlib.Workload

let ps = Sp_vm.Vm_types.page_size

let reset_world () =
  Sp_sim.Simclock.reset ();
  Sp_sim.Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Part 1: simulated tables                                            *)
(* ------------------------------------------------------------------ *)

let simulated_tables () =
  let ppf = Format.std_formatter in
  reset_world ();
  Table_header.print ppf;
  reset_world ();
  let t2 = Sp_benchlib.Table2.run () in
  Sp_benchlib.Table2.print ppf t2;
  Format.fprintf ppf "@.";
  reset_world ();
  let t3 = Sp_benchlib.Table3.run () in
  Sp_benchlib.Table3.print ppf t3;
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Figures.print ppf ();
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Ablations.print ppf (Sp_benchlib.Ablations.run_all ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Bulk_bench.print ppf (Sp_benchlib.Bulk_bench.run ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Ablations.print_depth_sweep ppf (Sp_benchlib.Ablations.depth_sweep ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Macro.print ppf (Sp_benchlib.Macro.run ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Faults.print ppf (Sp_benchlib.Faults.run ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Failover.print ppf (Sp_benchlib.Failover.run ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Failover.print_avail ppf (Sp_benchlib.Failover.avail ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Scrub.print ppf (Sp_benchlib.Scrub.run ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Scale.print ppf (Sp_benchlib.Scale.run ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Namespace.print ppf (Sp_benchlib.Namespace.run ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Dfs_bench.print ppf (Sp_benchlib.Dfs_bench.run ());
  Format.fprintf ppf "@.";
  reset_world ();
  Sp_benchlib.Journal_bench.print ppf (Sp_benchlib.Journal_bench.run ());
  Format.fprintf ppf "@."

(* Optional per-layer breakdown (--profile): attribute the simulated time
   of the Table 2 stacked hot paths to individual layer instances via
   Sp_trace, alongside the aggregate tables above. *)
let per_layer_breakdown () =
  let ppf = Format.std_formatter in
  reset_world ();
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 (fun () ->
      let inst = Sp_benchlib.Workload.make_instance ~tag:"prof" Sp_benchlib.Workload.Stacked_two_domains in
      let data = Bytes.make ps 'p' in
      let (), trace =
        Sp_trace.with_tracing ~root:"bench" (fun () ->
            for _ = 1 to 10 do
              ignore (F.write inst.W.i_file ~pos:0 data);
              ignore (F.read inst.W.i_file ~pos:0 ~len:ps);
              ignore (F.stat inst.W.i_file)
            done;
            S.sync inst.W.i_fs)
      in
      Format.fprintf ppf
        "@.Per-layer breakdown: 10 x warm (write4k+read4k+stat) on the \
         two-domain stack (paper_1993)@.%a@."
        Sp_trace.pp_profile trace)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel wall-clock benches                                 *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit
module SS = Sp_core.Stackable
module FF = Sp_core.File

(* Table 2 paths: warm open / read / write / stat on the two-domain SFS. *)
let bench_table2 =
  let inst =
    lazy
      (Sp_sim.Cost_model.set Sp_sim.Cost_model.fast;
       W.make_instance W.Stacked_two_domains)
  in
  let name = Sp_naming.Sname.of_string "bench" in
  let data = Bytes.make ps 'b' in
  Test.make_grouped ~name:"table2_sfs_paths"
    [
      Test.make ~name:"open"
        (Staged.stage (fun () -> ignore (SS.open_file (Lazy.force inst).W.i_fs name)));
      Test.make ~name:"read4k"
        (Staged.stage (fun () ->
             ignore (FF.read (Lazy.force inst).W.i_file ~pos:0 ~len:ps)));
      Test.make ~name:"write4k"
        (Staged.stage (fun () -> ignore (FF.write (Lazy.force inst).W.i_file ~pos:0 data)));
      Test.make ~name:"stat"
        (Staged.stage (fun () -> ignore (FF.stat (Lazy.force inst).W.i_file)));
    ]

(* Table 3 paths: the monolithic baseline. *)
let bench_table3 =
  let state =
    lazy
      (Sp_sim.Cost_model.set Sp_sim.Cost_model.fast;
       let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
       let ufs = Sp_baseline.Unixfs.mkfs_and_mount disk in
       let fd = Sp_baseline.Unixfs.creat ufs "bench" in
       ignore (Sp_baseline.Unixfs.write ufs fd ~pos:0 (Bytes.make ps 'u'));
       (ufs, fd))
  in
  let data = Bytes.make ps 'u' in
  Test.make_grouped ~name:"table3_unixfs_paths"
    [
      Test.make ~name:"open"
        (Staged.stage (fun () ->
             let ufs, _ = Lazy.force state in
             ignore (Sp_baseline.Unixfs.openf ufs "bench")));
      Test.make ~name:"read4k"
        (Staged.stage (fun () ->
             let ufs, fd = Lazy.force state in
             ignore (Sp_baseline.Unixfs.read ufs fd ~pos:0 ~len:ps)));
      Test.make ~name:"write4k"
        (Staged.stage (fun () ->
             let ufs, fd = Lazy.force state in
             ignore (Sp_baseline.Unixfs.write ufs fd ~pos:0 data)));
      Test.make ~name:"fstat"
        (Staged.stage (fun () ->
             let ufs, fd = Lazy.force state in
             ignore (Sp_baseline.Unixfs.fstat ufs fd)));
    ]

(* Figure 5/6 paths: COMPFS write+sync in both container modes. *)
let bench_fig56 =
  let make coherent tag =
    lazy
      (Sp_sim.Cost_model.set Sp_sim.Cost_model.fast;
       let vmm = Sp_vm.Vmm.create ~node:tag ("vmm-" ^ tag) in
       let disk = Sp_blockdev.Disk.create ~blocks:4096 () in
       Sp_sfs.Disk_layer.mkfs disk;
       let sfs =
         Sp_coherency.Spring_sfs.make_split ~node:tag ~vmm ~name:("sfs-" ^ tag)
           ~same_domain:false disk
       in
       let comp =
         Sp_compfs.Compfs.make ~node:tag ~coherent ~vmm ~name:("comp-" ^ tag) ()
       in
       SS.stack_on comp sfs;
       let f = SS.create comp (Sp_naming.Sname.of_string "bench") in
       ignore (FF.write f ~pos:0 (Bytes.make ps 'c'));
       FF.sync f;
       f)
  in
  let fig5 = make false "wfig5" in
  let fig6 = make true "wfig6" in
  let data = Bytes.make ps 'c' in
  Test.make_grouped ~name:"fig56_compfs_modes"
    [
      Test.make ~name:"incoherent_write_sync"
        (Staged.stage (fun () ->
             let f = Lazy.force fig5 in
             ignore (FF.write f ~pos:0 data);
             FF.sync f));
      Test.make ~name:"coherent_write_sync"
        (Staged.stage (fun () ->
             let f = Lazy.force fig6 in
             ignore (FF.write f ~pos:0 data);
             FF.sync f));
    ]

(* Figure 7 / DFS paths: remote stat and read over the simulated network,
   with and without CFS. *)
let bench_dfs =
  let state =
    lazy
      (Sp_sim.Cost_model.set Sp_sim.Cost_model.fast;
       let net = Sp_dfs.Net.create () in
       let vmm_a = Sp_vm.Vmm.create ~node:"wsrv" "vmm-wsrv" in
       let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
       Sp_sfs.Disk_layer.mkfs disk;
       let sfs =
         Sp_coherency.Spring_sfs.make_split ~node:"wsrv" ~vmm:vmm_a ~name:"wsfs"
           ~same_domain:false disk
       in
       let dfs = Sp_dfs.Dfs.make_server ~node:"wsrv" ~net ~vmm:vmm_a ~name:"wdfs" () in
       SS.stack_on dfs sfs;
       ignore (SS.create dfs (Sp_naming.Sname.of_string "bench"));
       let import = Sp_dfs.Dfs.import ~net ~client_node:"wcli" dfs in
       let remote = SS.open_file import (Sp_naming.Sname.of_string "bench") in
       ignore (FF.write remote ~pos:0 (Bytes.make ps 'r'));
       let vmm_b = Sp_vm.Vmm.create ~node:"wcli" "vmm-wcli" in
       let cfs = Sp_cfs.Cfs.make ~node:"wcli" ~vmm:vmm_b ~name:"wcfs" () in
       let local = Sp_cfs.Cfs.interpose cfs remote in
       ignore (FF.stat local);
       ignore (FF.read local ~pos:0 ~len:ps);
       (remote, local))
  in
  Test.make_grouped ~name:"dfs_remote_paths"
    [
      Test.make ~name:"remote_stat_rpc"
        (Staged.stage (fun () -> ignore (FF.stat (fst (Lazy.force state)))));
      Test.make ~name:"remote_read4k_rpc"
        (Staged.stage (fun () ->
             ignore (FF.read (fst (Lazy.force state)) ~pos:0 ~len:ps)));
      Test.make ~name:"cfs_stat_cached"
        (Staged.stage (fun () -> ignore (FF.stat (snd (Lazy.force state)))));
      Test.make ~name:"cfs_read4k_cached"
        (Staged.stage (fun () ->
             ignore (FF.read (snd (Lazy.force state)) ~pos:0 ~len:ps)));
    ]

let run_bechamel () =
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  let print_results name tbl =
    Format.printf "@.Bechamel (wall clock): %s@." name;
    Hashtbl.iter
      (fun key result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Format.printf "  %-45s %12.0f ns/run@." key est
        | _ -> Format.printf "  %-45s (no estimate)@." key)
      tbl
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      print_results (Test.name test) results)
    [ bench_table2; bench_table3; bench_fig56; bench_dfs ]

(* ------------------------------------------------------------------ *)
(* Machine-readable rows (--json) and the perf guard (--check-perf)    *)
(* ------------------------------------------------------------------ *)

module PJ = Sp_benchlib.Perf_json

(* Every deterministic simulated table as flat {table, label, ns} rows.
   The simulation is exact, so the CI tolerance only absorbs deliberate
   cost-model churn, never measurement noise. *)
let collect_rows () =
  let rows = ref [] in
  let add table label ns = rows := { PJ.table; label; ns } :: !rows in
  let config_names = [| "not stacked"; "one domain"; "two domains" |] in
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Table2.row) ->
      let cached =
        match r.cached with
        | None -> ""
        | Some true -> " cached"
        | Some false -> " uncached"
      in
      Array.iteri
        (fun i ns ->
          add "table2"
            (Printf.sprintf "%s%s, %s" r.operation cached config_names.(i))
            ns)
        r.ns)
    (Sp_benchlib.Table2.run ());
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Table3.row) ->
      add "table3" (r.operation ^ ", sunos") r.sunos_ns;
      add "table3" (r.operation ^ ", spring") r.spring_ns)
    (Sp_benchlib.Table3.run ());
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Ablations.result) ->
      add "ablations" (r.label ^ ", baseline") r.baseline_ns;
      add "ablations" (r.label ^ ", variant") r.variant_ns)
    (Sp_benchlib.Ablations.run_all ());
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Bulk_bench.row) ->
      add "bulk" (r.label ^ ", off") r.off_ns;
      add "bulk" (r.label ^ ", on") r.on_ns)
    (Sp_benchlib.Bulk_bench.run ());
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Macro.result) ->
      add "macro" (Sp_benchlib.Workload.config_label r.config) r.total_ns)
    (Sp_benchlib.Macro.run ());
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Scale.row) ->
      let label fmt = Printf.sprintf "%d clients, %s" r.sc_clients fmt in
      add "scale" (label "p50") r.sc_p50_ns;
      add "scale" (label "p99") r.sc_p99_ns;
      add "scale" (label "p999") r.sc_p999_ns;
      add "scale" (label "elapsed") r.sc_elapsed_ns)
    (Sp_benchlib.Scale.run ());
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Failover.avail_row) ->
      let label fmt = Printf.sprintf "%d clients, %s" r.a_clients fmt in
      add "availability" (label "worst recover") r.a_recover_ns;
      add "availability" (label "ops served") r.a_op_served;
      add "availability" (label "retried") r.a_retried)
    (Sp_benchlib.Failover.avail ());
  reset_world ();
  let ns = Sp_benchlib.Namespace.run () in
  List.iter
    (fun (r : Sp_benchlib.Namespace.open_row) ->
      (match r.no_flat_ns with
      | Some flat ->
          add "namespace"
            (Printf.sprintf "cold open, flat, %d entries" r.no_entries)
            flat
      | None -> ());
      add "namespace"
        (Printf.sprintf "cold open, indexed, %d entries" r.no_entries)
        r.no_indexed_ns)
    ns.Sp_benchlib.Namespace.t_opens;
  let c = ns.Sp_benchlib.Namespace.t_cache in
  add "namespace" "open, two domains, name-cache miss" c.nc_cold_ns;
  add "namespace" "open, two domains, name-cache hit" c.nc_warm_ns;
  add "namespace" "name-cache hit ratio (percent)" c.nc_hit_pct;
  let r = ns.Sp_benchlib.Namespace.t_readdir in
  add "namespace"
    (Printf.sprintf "readdir stream, %d entries" r.nr_entries)
    r.nr_ns;
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Dfs_bench.row) ->
      let label fmt = Printf.sprintf "%d nodes, %s" r.d_nodes fmt in
      add "dfs" (label "elapsed") r.d_elapsed_ns;
      add "dfs" (label "control elapsed") r.d_ctl_elapsed_ns;
      add "dfs" (label "warm hits") r.d_warm_hits;
      add "dfs"
        (label "control messages per 32 opens")
        (int_of_float (r.d_ctl_open_msgs *. 32.)))
    (Sp_benchlib.Dfs_bench.run ());
  reset_world ();
  List.iter
    (fun (r : Sp_benchlib.Journal_bench.row) ->
      let label fmt = Printf.sprintf "%d clients, %s" r.sc_clients fmt in
      add "journal" (label "syncs") r.sc_syncs;
      add "journal" (label "commits") r.sc_commits;
      add "journal" (label "absorbed") r.sc_absorbed;
      add "journal" (label "sync p99") r.sc_sync_p99_ns;
      add "journal" (label "elapsed") r.sc_elapsed_ns)
    (Sp_benchlib.Journal_bench.run ());
  List.rev !rows

let write_json file =
  let rows = collect_rows () in
  let oc = open_out file in
  output_string oc (PJ.to_string rows);
  close_out oc;
  Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) file

let check_perf baseline_file =
  let baseline =
    let ic = open_in_bin baseline_file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    PJ.parse s
  in
  let fresh = collect_rows () in
  let tolerance = 0.10 in
  let verdicts = PJ.check ~tolerance ~baseline ~fresh in
  let regressions = ref 0 in
  List.iter
    (function
      | PJ.Regression (r, base) ->
          incr regressions;
          Printf.printf "REGRESSION %s/%s: %d ns -> %d ns (+%.1f%%)\n" r.table
            r.label base r.ns
            (100. *. (float_of_int r.ns /. float_of_int base -. 1.))
      | PJ.Missing r ->
          incr regressions;
          Printf.printf "MISSING    %s/%s: baseline row absent from this run\n"
            r.table r.label
      | PJ.Improvement (r, base) ->
          Printf.printf
            "improved   %s/%s: %d ns -> %d ns (%.1f%%); refresh %s to lock in\n"
            r.table r.label base r.ns
            (100. *. (1. -. float_of_int r.ns /. float_of_int base))
            baseline_file)
    verdicts;
  Printf.printf "PERF status=%s rows=%d baseline=%d tolerance=%.0f%%\n"
    (if !regressions = 0 then "ok" else "regressed")
    (List.length fresh) (List.length baseline) (100. *. tolerance);
  if !regressions > 0 then exit 1

let arg_value flag =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if String.equal Sys.argv.(i) flag then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  match (arg_value "--json", arg_value "--check-perf") with
  | Some file, _ -> write_json file
  | None, Some baseline -> check_perf baseline
  | None, None ->
      simulated_tables ();
      if Array.exists (String.equal "--profile") Sys.argv then per_layer_breakdown ();
      run_bechamel ()
