module F = Sp_core.File
module S = Sp_core.Stackable

let make_world () =
  let net = Sp_dfs.Net.create () in
  let vmm_a = Sp_vm.Vmm.create ~node:"alpha" "vmm_a" in
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~node:"alpha" ~vmm:vmm_a ~name:"sfs"
      ~same_domain:false (Util.fresh_disk ())
  in
  let dfs = Sp_dfs.Dfs.make_server ~node:"alpha" ~net ~vmm:vmm_a ~name:"dfs" () in
  S.stack_on dfs sfs;
  let import = Sp_dfs.Dfs.import ~net ~client_node:"beta" dfs in
  let vmm_b = Sp_vm.Vmm.create ~node:"beta" "vmm_b" in
  let cfs = Sp_cfs.Cfs.make ~node:"beta" ~vmm:vmm_b ~name:"cfs0" () in
  (net, sfs, dfs, import, cfs)

let test_interposed_io () =
  Util.in_world (fun () ->
      let _net, _sfs, dfs, import, cfs = make_world () in
      ignore (S.create dfs (Util.name "f"));
      let remote = S.open_file import (Util.name "f") in
      let local = Sp_cfs.Cfs.interpose cfs remote in
      ignore (F.write local ~pos:0 (Util.bytes_of_string "cfs cached"));
      Util.check_str "read through cfs" "cfs cached" (F.read local ~pos:0 ~len:10);
      (* Idempotent interposition. *)
      Alcotest.(check bool) "same wrapper" true
        (Sp_cfs.Cfs.interpose cfs remote == local))

let test_attr_caching_cuts_network () =
  Util.in_world (fun () ->
      let net, _sfs, dfs, import, cfs = make_world () in
      ignore (S.create dfs (Util.name "a"));
      let local = Sp_cfs.Cfs.interpose cfs (S.open_file import (Util.name "a")) in
      ignore (F.stat local);
      (* warm the attr cache *)
      Sp_dfs.Net.reset_stats net;
      for _ = 1 to 20 do
        ignore (F.stat local)
      done;
      Alcotest.(check int) "cached stats cross no network" 0
        (Sp_dfs.Net.stats net).Sp_dfs.Net.messages)

let test_data_caching_cuts_network () =
  Util.in_world (fun () ->
      let net, _sfs, dfs, import, cfs = make_world () in
      ignore (S.create dfs (Util.name "d"));
      let local = Sp_cfs.Cfs.interpose cfs (S.open_file import (Util.name "d")) in
      ignore (F.write local ~pos:0 (Util.bytes_of_string "stay local"));
      ignore (F.read local ~pos:0 ~len:10);
      Sp_dfs.Net.reset_stats net;
      for _ = 1 to 20 do
        ignore (F.read local ~pos:0 ~len:10)
      done;
      Alcotest.(check int) "cached reads cross no network" 0
        (Sp_dfs.Net.stats net).Sp_dfs.Net.messages)

let test_without_cfs_everything_is_remote () =
  Util.in_world (fun () ->
      let net, _sfs, dfs, import, _cfs = make_world () in
      ignore (S.create dfs (Util.name "r"));
      let remote = S.open_file import (Util.name "r") in
      ignore (F.stat remote);
      Sp_dfs.Net.reset_stats net;
      for _ = 1 to 5 do
        ignore (F.stat remote)
      done;
      Alcotest.(check bool) "uninterposed stats all go remote" true
        ((Sp_dfs.Net.stats net).Sp_dfs.Net.messages >= 5))

let test_attr_invalidation_from_server () =
  (* A server-side change invalidates CFS's cached attributes via the
     fs_cache channel, so the client sees fresh values. *)
  Util.in_world (fun () ->
      let _net, sfs, dfs, import, cfs = make_world () in
      ignore (S.create dfs (Util.name "inv"));
      let local = Sp_cfs.Cfs.interpose cfs (S.open_file import (Util.name "inv")) in
      Alcotest.(check int) "initially empty" 0 (F.stat local).Sp_vm.Attr.len;
      (* Write through the server's local SFS path. *)
      let server_file = S.open_file sfs (Util.name "inv") in
      ignore (F.write server_file ~pos:0 (Util.bytes_of_string "grown!"));
      Alcotest.(check int) "cfs view refreshed" 6 (F.stat local).Sp_vm.Attr.len)

let test_local_writes_reach_server () =
  Util.in_world (fun () ->
      let _net, sfs, dfs, import, cfs = make_world () in
      ignore (S.create dfs (Util.name "w"));
      let local = Sp_cfs.Cfs.interpose cfs (S.open_file import (Util.name "w")) in
      ignore (F.write local ~pos:0 (Util.bytes_of_string "to the server"));
      F.sync local;
      Util.check_str "server sees data" "to the server"
        (F.read (S.open_file sfs (Util.name "w")) ~pos:0 ~len:13))

let test_wrap_import () =
  Util.in_world (fun () ->
      let net, _sfs, dfs, import, cfs = make_world () in
      S.mkdir dfs (Util.name "sub");
      ignore (S.create dfs (Util.name "sub/x"));
      let cached_view = Sp_cfs.Cfs.wrap_import cfs import in
      let f = S.open_file cached_view (Util.name "sub/x") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "wrapped"));
      ignore (F.stat f);
      Sp_dfs.Net.reset_stats net;
      ignore (F.stat f);
      ignore (F.read f ~pos:0 ~len:7);
      Alcotest.(check int) "whole name space interposed" 0
        (Sp_dfs.Net.stats net).Sp_dfs.Net.messages)

let suite =
  [
    Alcotest.test_case "interposed io" `Quick test_interposed_io;
    Alcotest.test_case "attr caching cuts network" `Quick test_attr_caching_cuts_network;
    Alcotest.test_case "data caching cuts network" `Quick test_data_caching_cuts_network;
    Alcotest.test_case "without cfs: all remote" `Quick
      test_without_cfs_everything_is_remote;
    Alcotest.test_case "attr invalidation from server" `Quick
      test_attr_invalidation_from_server;
    Alcotest.test_case "local writes reach server" `Quick test_local_writes_reach_server;
    Alcotest.test_case "wrap_import" `Quick test_wrap_import;
  ]
