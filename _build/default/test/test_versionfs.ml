module F = Sp_core.File
module S = Sp_core.Stackable
module Vn = Sp_versionfs.Versionfs

let make_stack () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfs" ~same_domain:false
      (Util.fresh_disk ())
  in
  let ver = Vn.make ~name:"versionfs" () in
  S.stack_on ver sfs;
  (vmm, sfs, ver)

let test_snapshot_and_read_back () =
  Util.in_world (fun () ->
      let _vmm, _sfs, ver = make_stack () in
      let f = S.create ver (Util.name "doc") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "draft one"));
      F.sync f;
      let v1 = Vn.snapshot ver (Util.name "doc") in
      Alcotest.(check int) "first version" 1 v1;
      ignore (F.write f ~pos:0 (Util.bytes_of_string "draft TWO"));
      F.sync f;
      let v2 = Vn.snapshot ver (Util.name "doc") in
      Alcotest.(check int) "second version" 2 v2;
      Alcotest.(check (list int)) "versions listed" [ 1; 2 ]
        (Vn.versions ver (Util.name "doc"));
      Util.check_str "current is latest" "draft TWO" (F.read f ~pos:0 ~len:9);
      Util.check_str "v1 preserved" "draft one"
        (F.read (Vn.open_version ver (Util.name "doc") 1) ~pos:0 ~len:9))

let test_versions_read_only () =
  Util.in_world (fun () ->
      let _vmm, _sfs, ver = make_stack () in
      let f = S.create ver (Util.name "d") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "content"));
      F.sync f;
      ignore (Vn.snapshot ver (Util.name "d"));
      let v = Vn.open_version ver (Util.name "d") 1 in
      Alcotest.(check bool) "history immutable" true
        (try
           ignore (F.write v ~pos:0 (Util.bytes_of_string "tamper"));
           false
         with Sp_core.Fserr.Read_only _ -> true))

let test_restore () =
  Util.in_world (fun () ->
      let _vmm, _sfs, ver = make_stack () in
      let f = S.create ver (Util.name "r") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "good state, long"));
      F.sync f;
      ignore (Vn.snapshot ver (Util.name "r"));
      F.truncate f 0;
      ignore (F.write f ~pos:0 (Util.bytes_of_string "oops"));
      F.sync f;
      Vn.restore ver (Util.name "r") 1;
      Util.check_str "restored" "good state, long" (F.read f ~pos:0 ~len:16);
      Alcotest.(check int) "restored length" 16 (F.stat f).Sp_vm.Attr.len)

let test_versions_hidden () =
  Util.in_world (fun () ->
      let _vmm, sfs, ver = make_stack () in
      let f = S.create ver (Util.name "h") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "x"));
      F.sync f;
      ignore (Vn.snapshot ver (Util.name "h"));
      Alcotest.(check (list string)) "version files hidden above" [ "h" ]
        (S.listdir ver (Util.name "/"));
      Alcotest.(check (list string)) "but present below" [ ".v1.h"; "h" ]
        (S.listdir sfs (Util.name "/"));
      Alcotest.check_raises "hidden name unresolvable"
        (Sp_core.Fserr.No_such_file ".v1.h") (fun () ->
          ignore (S.open_file ver (Util.name ".v1.h"))))

let test_drop_version () =
  Util.in_world (fun () ->
      let _vmm, _sfs, ver = make_stack () in
      let f = S.create ver (Util.name "p") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "a"));
      F.sync f;
      ignore (Vn.snapshot ver (Util.name "p"));
      ignore (Vn.snapshot ver (Util.name "p"));
      ignore (Vn.snapshot ver (Util.name "p"));
      Vn.drop_version ver (Util.name "p") 2;
      Alcotest.(check (list int)) "sparse history" [ 1; 3 ]
        (Vn.versions ver (Util.name "p"));
      (* Next snapshot continues after the highest survivor. *)
      Alcotest.(check int) "next number" 4 (Vn.snapshot ver (Util.name "p")))

let test_history_survives_remove () =
  Util.in_world (fun () ->
      let _vmm, _sfs, ver = make_stack () in
      let f = S.create ver (Util.name "gone") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "last words"));
      F.sync f;
      ignore (Vn.snapshot ver (Util.name "gone"));
      S.remove ver (Util.name "gone");
      Alcotest.check_raises "current removed" (Sp_core.Fserr.No_such_file "gone")
        (fun () -> ignore (S.open_file ver (Util.name "gone")));
      Util.check_str "history retained" "last words"
        (F.read (Vn.open_version ver (Util.name "gone") 1) ~pos:0 ~len:10))

let test_nested_paths () =
  Util.in_world (fun () ->
      let _vmm, _sfs, ver = make_stack () in
      S.mkdir ver (Util.name "dir");
      let f = S.create ver (Util.name "dir/doc") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "nested v1"));
      F.sync f;
      ignore (Vn.snapshot ver (Util.name "dir/doc"));
      ignore (F.write f ~pos:7 (Util.bytes_of_string "99"));
      F.sync f;
      Util.check_str "nested history" "nested v1"
        (F.read (Vn.open_version ver (Util.name "dir/doc") 1) ~pos:0 ~len:9);
      Alcotest.(check (list string)) "nested listing clean" [ "doc" ]
        (S.listdir ver (Util.name "dir")))

let suite =
  [
    Alcotest.test_case "snapshot and read back" `Quick test_snapshot_and_read_back;
    Alcotest.test_case "versions are read-only" `Quick test_versions_read_only;
    Alcotest.test_case "restore" `Quick test_restore;
    Alcotest.test_case "version files hidden" `Quick test_versions_hidden;
    Alcotest.test_case "drop version" `Quick test_drop_version;
    Alcotest.test_case "history survives remove" `Quick test_history_survives_remove;
    Alcotest.test_case "nested paths" `Quick test_nested_paths;
  ]
