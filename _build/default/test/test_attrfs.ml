module F = Sp_core.File
module S = Sp_core.Stackable
module A = Sp_attrfs.Attrfs

let make_stack () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfs" ~same_domain:false
      (Util.fresh_disk ())
  in
  let attr = A.make ~name:"attrfs" () in
  S.stack_on attr sfs;
  (vmm, sfs, attr)

let xattr_of f =
  match A.xattrs f with
  | Some ops -> ops
  | None -> Alcotest.fail "file should narrow to xattrs"

let test_narrow () =
  Util.in_world (fun () ->
      let _vmm, sfs, attr = make_stack () in
      let f = S.create attr (Util.name "x") in
      Alcotest.(check bool) "attrfs file narrows" true (A.xattrs f <> None);
      let lower = S.open_file sfs (Util.name "x") in
      Alcotest.(check bool) "plain file does not narrow" true (A.xattrs lower = None))

let test_set_get_remove () =
  Util.in_world (fun () ->
      let _vmm, _sfs, attr = make_stack () in
      let f = S.create attr (Util.name "doc") in
      let xa = xattr_of f in
      Alcotest.(check (option string)) "missing" None (xa.A.xa_get "author");
      xa.A.xa_set "author" "khalidi";
      xa.A.xa_set "venue" "sosp93";
      Alcotest.(check (option string)) "get" (Some "khalidi") (xa.A.xa_get "author");
      xa.A.xa_set "author" "nelson";
      Alcotest.(check (option string)) "overwrite" (Some "nelson") (xa.A.xa_get "author");
      Alcotest.(check (list (pair string string)))
        "list sorted"
        [ ("author", "nelson"); ("venue", "sosp93") ]
        (xa.A.xa_list ());
      xa.A.xa_remove "author";
      Alcotest.(check (option string)) "removed" None (xa.A.xa_get "author");
      Alcotest.(check (list (pair string string))) "one left" [ ("venue", "sosp93") ]
        (xa.A.xa_list ()))

let test_data_passthrough () =
  Util.in_world (fun () ->
      let _vmm, sfs, attr = make_stack () in
      let f = S.create attr (Util.name "d") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "payload"));
      let xa = xattr_of f in
      xa.A.xa_set "k" "v";
      Util.check_str "data unaffected by xattrs" "payload" (F.read f ~pos:0 ~len:7);
      Alcotest.(check int) "length unaffected" 7 (F.stat f).Sp_vm.Attr.len;
      (* Data is readable below, unchanged. *)
      Util.check_str "lower data identical" "payload"
        (F.read (S.open_file sfs (Util.name "d")) ~pos:0 ~len:7))

let test_shadow_hidden () =
  Util.in_world (fun () ->
      let _vmm, sfs, attr = make_stack () in
      let f = S.create attr (Util.name "visible") in
      (xattr_of f).A.xa_set "k" "v";
      Alcotest.(check (list string)) "attrfs hides shadows" [ "visible" ]
        (S.listdir attr (Util.name "/"));
      (* The shadow exists in the lower layer (administratively visible). *)
      Alcotest.(check (list string)) "lower shows both"
        [ ".xattr.visible"; "visible" ]
        (S.listdir sfs (Util.name "/"));
      (* Shadows cannot be resolved through attrfs. *)
      Alcotest.check_raises "shadow unresolvable"
        (Sp_core.Fserr.No_such_file ".xattr.visible") (fun () ->
          ignore (S.open_file attr (Util.name ".xattr.visible"))))

let test_xattrs_persist () =
  Util.in_world (fun () ->
      let _vmm, sfs, attr = make_stack () in
      let f = S.create attr (Util.name "p") in
      (xattr_of f).A.xa_set "colour" "blue";
      S.sync attr;
      (* A fresh attrfs instance over the same lower layer sees them. *)
      let attr2 = A.make ~name:"attrfs2" () in
      S.stack_on attr2 sfs;
      let f2 = S.open_file attr2 (Util.name "p") in
      Alcotest.(check (option string)) "persisted" (Some "blue")
        ((xattr_of f2).A.xa_get "colour"))

let test_remove_cleans_shadow () =
  Util.in_world (fun () ->
      let _vmm, sfs, attr = make_stack () in
      let f = S.create attr (Util.name "gone") in
      (xattr_of f).A.xa_set "k" "v";
      S.remove attr (Util.name "gone");
      Alcotest.(check (list string)) "shadow removed below" []
        (S.listdir sfs (Util.name "/")))

let test_subdirectories () =
  Util.in_world (fun () ->
      let _vmm, _sfs, attr = make_stack () in
      S.mkdir attr (Util.name "dir");
      let f = S.create attr (Util.name "dir/f") in
      (xattr_of f).A.xa_set "nested" "yes";
      let again = S.open_file attr (Util.name "dir/f") in
      Alcotest.(check (option string)) "nested xattr" (Some "yes")
        ((xattr_of again).A.xa_get "nested");
      Alcotest.(check (list string)) "nested listing hides shadow" [ "f" ]
        (S.listdir attr (Util.name "dir")))

let test_binary_values () =
  Util.in_world (fun () ->
      let _vmm, _sfs, attr = make_stack () in
      let f = S.create attr (Util.name "bin") in
      let xa = xattr_of f in
      let v = Bytes.to_string (Util.pattern_bytes 300) in
      xa.A.xa_set "blob" v;
      Alcotest.(check (option string)) "binary value roundtrip" (Some v)
        (xa.A.xa_get "blob"))

let prop_xattr_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (triple (int_range 0 4) (string_size (int_range 0 10)) bool))
  in
  Util.qcheck_case ~count:30 "xattr ops match assoc-list model" gen (fun ops ->
      Util.in_world (fun () ->
          let _vmm, _sfs, attr = make_stack () in
          let f = S.create attr (Util.name "prop") in
          let xa = xattr_of f in
          let keys = [| "a"; "b"; "c"; "d"; "e" |] in
          let model = Hashtbl.create 8 in
          List.iter
            (fun (ki, v, is_set) ->
              let k = keys.(ki) in
              if is_set then begin
                xa.A.xa_set k v;
                Hashtbl.replace model k v
              end
              else begin
                xa.A.xa_remove k;
                Hashtbl.remove model k
              end)
            ops;
          let expected =
            List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
          in
          xa.A.xa_list () = expected))

let suite =
  [
    Alcotest.test_case "narrow to xattrs" `Quick test_narrow;
    Alcotest.test_case "set/get/remove/list" `Quick test_set_get_remove;
    Alcotest.test_case "data passthrough" `Quick test_data_passthrough;
    Alcotest.test_case "shadow files hidden" `Quick test_shadow_hidden;
    Alcotest.test_case "xattrs persist" `Quick test_xattrs_persist;
    Alcotest.test_case "remove cleans shadow" `Quick test_remove_cleans_shadow;
    Alcotest.test_case "subdirectories" `Quick test_subdirectories;
    Alcotest.test_case "binary values" `Quick test_binary_values;
    prop_xattr_model;
  ]
