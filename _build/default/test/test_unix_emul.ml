module U = Sp_unix.Unix_emul
module S = Sp_core.Stackable

let errno = Alcotest.testable (Fmt.of_to_string U.errno_to_string) ( = )
let ok_int = Alcotest.(result int errno)
let ok_unit = Alcotest.(result unit errno)

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (U.errno_to_string e)

let make_process ?(with_compfs = false) () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~vmm ~name:"usfs" ~same_domain:false
      (Util.fresh_disk ())
  in
  let root =
    if with_compfs then begin
      let comp = Sp_compfs.Compfs.make ~vmm ~name:"ucomp" () in
      S.stack_on comp sfs;
      comp
    end
    else sfs
  in
  U.create_process ~root ()

let test_open_write_read () =
  Util.in_world (fun () ->
      let p = make_process () in
      let fd = get (U.creat p "/hello.txt") in
      Alcotest.check ok_int "write" (Ok 11) (U.write p fd (Bytes.of_string "hello world"));
      (* Seek back and read sequentially. *)
      Alcotest.check ok_int "lseek" (Ok 0) (U.lseek p fd 0 U.SEEK_SET);
      Util.check_str "read" "hello" (get (U.read p fd 5));
      Util.check_str "read advances" " world" (get (U.read p fd 6));
      Util.check_str "eof returns short" "" (get (U.read p fd 10));
      Alcotest.check ok_unit "close" (Ok ()) (U.close p fd))

let test_open_flags () =
  Util.in_world (fun () ->
      let p = make_process () in
      Alcotest.(check bool) "missing without O_CREAT" true
        (U.openf p "/nope" [ U.O_RDONLY ] = Error U.ENOENT);
      let fd = get (U.openf p "/f" [ U.O_CREAT; U.O_RDWR ]) in
      ignore (get (U.write p fd (Bytes.of_string "0123456789")));
      Alcotest.(check bool) "O_EXCL on existing" true
        (U.openf p "/f" [ U.O_CREAT; U.O_EXCL ] = Error U.EEXIST);
      (* O_TRUNC empties. *)
      let fd2 = get (U.openf p "/f" [ U.O_RDWR; U.O_TRUNC ]) in
      Alcotest.(check int) "truncated" 0 (get (U.fstat p fd2)).Sp_vm.Attr.len;
      (* O_APPEND writes at the end regardless of seek. *)
      let fd3 = get (U.openf p "/f" [ U.O_APPEND ]) in
      ignore (get (U.write p fd3 (Bytes.of_string "AA")));
      ignore (get (U.lseek p fd3 0 U.SEEK_SET));
      ignore (get (U.write p fd3 (Bytes.of_string "BB")));
      Util.check_str "appended" "AABB" (get (U.pread p fd3 ~pos:0 ~len:4)))

let test_errno_mapping () =
  Util.in_world (fun () ->
      let p = make_process () in
      Alcotest.(check bool) "EBADF" true (U.read p 99 4 = Error U.EBADF);
      ignore (get (U.mkdir p "/d"));
      Alcotest.(check bool) "EISDIR on open dir" true
        (U.openf p "/d" [ U.O_RDONLY ] = Error U.EISDIR);
      Alcotest.(check bool) "EEXIST on mkdir" true (U.mkdir p "/d" = Error U.EEXIST);
      ignore (get (U.creat p "/d/x"));
      Alcotest.(check bool) "ENOTEMPTY on rmdir" true (U.rmdir p "/d" = Error U.ENOTEMPTY);
      ignore (get (U.unlink p "/d/x"));
      Alcotest.check ok_unit "rmdir empty" (Ok ()) (U.rmdir p "/d");
      (* Read-only descriptor refuses writes. *)
      ignore (get (U.creat p "/ro"));
      let fd = get (U.openf p "/ro" [ U.O_RDONLY ]) in
      Alcotest.(check bool) "EACCES" true
        (U.write p fd (Bytes.of_string "x") = Error U.EACCES))

let test_cwd_and_relative_paths () =
  Util.in_world (fun () ->
      let p = make_process () in
      ignore (get (U.mkdir p "/home"));
      ignore (get (U.mkdir p "/home/user"));
      Alcotest.check ok_unit "chdir" (Ok ()) (U.chdir p "/home/user");
      Alcotest.(check string) "getcwd" "/home/user" (U.getcwd p);
      let fd = get (U.creat p "notes.txt") in
      ignore (get (U.write p fd (Bytes.of_string "relative")));
      (* Visible by absolute path. *)
      let fd2 = get (U.openf p "/home/user/notes.txt" [ U.O_RDONLY ]) in
      Util.check_str "relative = absolute" "relative" (get (U.read p fd2 8));
      Alcotest.(check bool) "chdir to file is ENOTDIR" true
        (U.chdir p "notes.txt" = Error U.ENOTDIR))

let test_dup_shares_offset () =
  Util.in_world (fun () ->
      let p = make_process () in
      let fd = get (U.creat p "/dup") in
      ignore (get (U.write p fd (Bytes.of_string "abcdef")));
      ignore (get (U.lseek p fd 0 U.SEEK_SET));
      let fd2 = get (U.dup p fd) in
      Util.check_str "read via original" "ab" (get (U.read p fd 2));
      Util.check_str "dup shares seek pointer" "cd" (get (U.read p fd2 2));
      ignore (get (U.close p fd));
      Util.check_str "dup survives close of sibling" "ef" (get (U.read p fd2 2)))

let test_rename_link_readdir () =
  Util.in_world (fun () ->
      let p = make_process () in
      let fd = get (U.creat p "/a") in
      ignore (get (U.write p fd (Bytes.of_string "payload")));
      ignore (get (U.fsync p fd));
      Alcotest.check ok_unit "rename" (Ok ()) (U.rename p "/a" "/b");
      Alcotest.(check bool) "old gone" true (U.stat p "/a" = Error U.ENOENT);
      ignore (get (U.link p "/b" "/c"));
      Alcotest.(check (list string)) "readdir" [ "b"; "c" ] (get (U.readdir p "/"));

      let fd2 = get (U.openf p "/c" [ U.O_RDONLY ]) in
      Util.check_str "hard link shares data" "payload" (get (U.read p fd2 7)))

let test_lseek_whence () =
  Util.in_world (fun () ->
      let p = make_process () in
      let fd = get (U.creat p "/s") in
      ignore (get (U.write p fd (Bytes.of_string "0123456789")));
      Alcotest.check ok_int "SEEK_END" (Ok 10) (U.lseek p fd 0 U.SEEK_END);
      Alcotest.check ok_int "SEEK_CUR" (Ok 8) (U.lseek p fd (-2) U.SEEK_CUR);
      Util.check_str "tail" "89" (get (U.read p fd 2));
      Alcotest.(check bool) "negative target" true
        (U.lseek p fd (-1) U.SEEK_SET = Error U.EINVAL);
      (* Seeking past EOF then writing leaves a hole. *)
      ignore (get (U.lseek p fd 20 U.SEEK_SET));
      ignore (get (U.write p fd (Bytes.of_string "end")));
      Util.check_str "hole reads zeros" "\000\000" (get (U.pread p fd ~pos:12 ~len:2)))

let test_unix_on_compressed_stack () =
  (* The same UNIX program runs unchanged over a compression stack — the
     paper's extensibility pitch from the application's point of view. *)
  Util.in_world (fun () ->
      let p = make_process ~with_compfs:true () in
      let fd = get (U.creat p "/app.log") in
      let line = Bytes.of_string "log line: everything is fine\n" in
      for _ = 1 to 100 do
        ignore (get (U.write p fd line))
      done;
      ignore (get (U.fsync p fd));
      Alcotest.(check int) "size via fstat" (100 * Bytes.length line)
        (get (U.fstat p fd)).Sp_vm.Attr.len;
      ignore (get (U.lseek p fd 0 U.SEEK_SET));
      Util.check_str "reads back through compression" "log line"
        (get (U.read p fd 8)))

let suite =
  [
    Alcotest.test_case "open/write/read" `Quick test_open_write_read;
    Alcotest.test_case "open flags" `Quick test_open_flags;
    Alcotest.test_case "errno mapping" `Quick test_errno_mapping;
    Alcotest.test_case "cwd and relative paths" `Quick test_cwd_and_relative_paths;
    Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
    Alcotest.test_case "rename/link/readdir" `Quick test_rename_link_readdir;
    Alcotest.test_case "lseek whence" `Quick test_lseek_whence;
    Alcotest.test_case "unix app on compressed stack" `Quick
      test_unix_on_compressed_stack;
  ]
