(* End-to-end scenarios from the paper: the §4.4 configuration method, the
   §4.5 walk-through (DFS on COMPFS on SFS), and cross-layer towers. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module N = Sp_node.Node

let build_45_stack () =
  let world = N.World.create () in
  let alpha = N.World.add_node world "alpha" in
  ignore (N.add_disk alpha ~name:"disk0" ~blocks:4096);
  Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");
  let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:"sfs0" in
  (* §4.5: look up creators, create instances, stack COMPFS on SFS, DFS on
     COMPFS, and export everything. *)
  let compfs = S.instantiate (N.creators alpha) "compfs" ~name:"compfs0" in
  S.stack_on compfs sfs;
  let dfs = S.instantiate (N.creators alpha) "dfs" ~name:"dfs0" in
  S.stack_on dfs compfs;
  Sp_core.Stack_builder.expose ~root:(N.root alpha) ~at:(Util.name "fs/compfs0") compfs;
  Sp_core.Stack_builder.expose ~root:(N.root alpha) ~at:(Util.name "fs/dfs0") dfs;
  (world, alpha, sfs, compfs, dfs)

let test_walkthrough_45 () =
  Util.in_world (fun () ->
      let world, _alpha, sfs, compfs, dfs = build_45_stack () in
      (* A remote name lookup arrives through the private DFS protocol;
         resolution cascades down the stack. *)
      let import = Sp_dfs.Dfs.import ~net:(N.World.net world) ~client_node:"beta" dfs in
      let rf = S.create import (Util.name "paper.txt") in
      (* A remote write, then a remote read request: DFS page-in -> COMPFS
         uncompresses -> SFS reads the disk. *)
      let text = String.concat " " (List.init 5000 (fun _ -> "spring")) in
      ignore (F.write rf ~pos:0 (Util.bytes_of_string text));
      Util.check_str "remote read through three layers"
        (String.sub text 0 40)
        (F.read rf ~pos:0 ~len:40);
      (* "At any point the underlying data may be accessed through
         file_COMP or (compressed) through file_SFS.  All such accesses
         will be coherent with each other and with remote DFS clients." *)
      S.sync import;
      let via_compfs = S.open_file compfs (Util.name "paper.txt") in
      Util.check_str "COMPFS view coherent"
        (String.sub text 0 40)
        (F.read via_compfs ~pos:0 ~len:40);
      let via_sfs = S.open_file sfs (Util.name "paper.txt") in
      let container = F.read_all via_sfs in
      Alcotest.(check bool) "SFS view holds the compressed container" true
        (Bytes.length container < String.length text);
      (* A local write via COMPFS is seen by the remote client. *)
      ignore (F.write via_compfs ~pos:0 (Util.bytes_of_string "LOCAL!"));
      Util.check_str "remote client sees local write" "LOCAL!"
        (F.read rf ~pos:0 ~len:6))

let test_fig3_graph () =
  (* Figure 3: compression on one base volume; a mirror across two other
     volumes; everything exposed side by side. *)
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      List.iter
        (fun d ->
          ignore (N.add_disk alpha ~name:d ~blocks:2048);
          Sp_sfs.Disk_layer.mkfs (N.disk alpha d))
        [ "d1"; "d2"; "d3" ];
      let fs1 = N.mount_sfs alpha ~disk_name:"d1" ~name:"fs1" in
      let fs2 = N.mount_sfs alpha ~disk_name:"d2" ~name:"fs2" in
      let fs3 = N.build_stack alpha ~base:fs1 [ ("compfs", "fs3") ] in
      let fs4 = S.instantiate (N.creators alpha) "mirrorfs" ~name:"fs4" in
      S.stack_on fs4 fs1;
      S.stack_on fs4 fs2;
      Sp_core.Stack_builder.expose ~root:(N.root alpha) ~at:(Util.name "fs/fs3") fs3;
      Sp_core.Stack_builder.expose ~root:(N.root alpha) ~at:(Util.name "fs/fs4") fs4;
      (* fs3 (compression) works over fs1... *)
      let f3 = S.create fs3 (Util.name "comp") in
      ignore (F.write f3 ~pos:0 (Util.bytes_of_string "via fs3"));
      Util.check_str "fs3 io" "via fs3" (F.read f3 ~pos:0 ~len:7);
      (* ...and fs4 (mirroring) replicates over fs1+fs2 concurrently. *)
      let f4 = S.create fs4 (Util.name "mirr") in
      ignore (F.write f4 ~pos:0 (Util.bytes_of_string "via fs4"));
      F.sync f4;
      Util.check_str "replica on fs2" "via fs4"
        (F.read (S.open_file fs2 (Util.name "mirr")) ~pos:0 ~len:7);
      (* Administrative view: both exported. *)
      Alcotest.(check (list string)) "exposed" [ "fs1"; "fs2"; "fs3"; "fs4" ]
        (Sp_naming.Context.list (N.root alpha) (Util.name "fs")))

let test_crypt_under_comp () =
  (* A deeper tower: coherency over compression over encryption over SFS.
     Exercises pager stacking depth 4. *)
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      ignore (N.add_disk alpha ~name:"d" ~blocks:4096);
      Sp_sfs.Disk_layer.mkfs (N.disk alpha "d");
      let sfs = N.mount_sfs alpha ~disk_name:"d" ~name:"base" in
      let top =
        N.build_stack alpha ~base:sfs
          [ ("cryptfs", "crypt0"); ("compfs", "comp0"); ("coherency", "coh0") ]
      in
      let f = S.create top (Util.name "tower") in
      let payload = Util.pattern_bytes 10_000 in
      ignore (F.write f ~pos:0 payload);
      Util.check_bytes "roundtrip through four layers" payload
        (F.read f ~pos:0 ~len:10_000);
      S.sync top;
      (* The base volume holds neither plaintext nor the raw compressed
         container (it is encrypted). *)
      let base_file = S.open_file sfs (Util.name "tower") in
      let raw = F.read_all base_file in
      Alcotest.(check bool) "base is not plaintext" false
        (Bytes.equal raw payload))

let test_dfs_on_transform_tower () =
  (* Regression: DFS serving a compfs-on-cryptfs tower exercises container
     appends through a length-clipping lower layer. *)
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      ignore (N.add_disk alpha ~name:"d" ~blocks:8192);
      Sp_sfs.Disk_layer.mkfs (N.disk alpha "d");
      let sfs = N.mount_sfs alpha ~disk_name:"d" ~name:"base" in
      let top =
        N.build_stack alpha ~base:sfs [ ("cryptfs", "crypt0"); ("compfs", "comp0") ]
      in
      let f = S.create top (Util.name "payload") in
      let text = Util.pattern_bytes 9000 in
      ignore (F.write f ~pos:0 text);
      S.sync top;
      let dfs = N.build_stack alpha ~base:top [ ("dfs", "dfs0") ] in
      let import =
        Sp_dfs.Dfs.import ~net:(N.World.net world) ~client_node:"beta" dfs
      in
      let rf = S.open_file import (Util.name "payload") in
      Alcotest.(check int) "remote length" 9000 (F.stat rf).Sp_vm.Attr.len;
      Util.check_bytes "remote bytes identical" text (F.read rf ~pos:0 ~len:9000))

let test_dfs_serves_compressed_savings () =
  (* The intro's motivation: add compression to a distributed volume
     without touching DFS or SFS. *)
  Util.in_world (fun () ->
      let world, _alpha, sfs, compfs, dfs = build_45_stack () in
      ignore world;
      let import = Sp_dfs.Dfs.import ~net:(N.World.net world) ~client_node:"beta" dfs in
      let rf = S.create import (Util.name "log") in
      let logtext = Bytes.of_string (String.concat "\n" (List.init 500 (fun i ->
          Printf.sprintf "entry %d: status ok" i)))
      in
      ignore (F.write rf ~pos:0 logtext);
      S.sync import;
      let logical = Sp_compfs.Compfs.logical_bytes compfs (Util.name "log") in
      let physical = Sp_compfs.Compfs.container_bytes compfs (Util.name "log") in
      Alcotest.(check int) "logical size" (Bytes.length logtext) logical;
      Alcotest.(check bool) "disk savings behind DFS" true (physical < logical);
      ignore sfs)

let test_tower_under_memory_pressure () =
  (* The whole stack stays correct when the node VMM can cache only a
     handful of pages: every eviction round-trips through the pager
     protocol of each layer. *)
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      ignore (N.add_disk alpha ~name:"d" ~blocks:8192);
      Sp_sfs.Disk_layer.mkfs (N.disk alpha "d");
      let sfs = N.mount_sfs alpha ~disk_name:"d" ~name:"base" in
      let top =
        N.build_stack alpha ~base:sfs
          [ ("cryptfs", "p-crypt"); ("compfs", "p-comp"); ("coherency", "p-coh") ]
      in
      Sp_vm.Vmm.set_capacity (N.vmm alpha) ~pages:(Some 6);
      let f = S.create top (Util.name "pressure") in
      let payload = Util.pattern_bytes (24 * 4096) in
      ignore (F.write f ~pos:0 payload);
      Util.check_bytes "large file correct under tiny cache" payload
        (F.read f ~pos:0 ~len:(Bytes.length payload));
      Alcotest.(check bool) "evictions actually occurred" true
        (Sp_vm.Vmm.evictions (N.vmm alpha) > 10);
      S.sync top;
      Util.check_bytes "still correct after sync" (Bytes.sub payload 0 4096)
        (F.read f ~pos:0 ~len:4096))

let test_stress_full_stack_with_fsck () =
  (* Capstone: a long random workload through a four-layer tower, verified
     against an in-memory model, with MRSW invariants checked along the
     way and an fsck of the base volume at the end. *)
  Util.in_world (fun () ->
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      ignore (N.add_disk alpha ~name:"d" ~blocks:8192);
      Sp_sfs.Disk_layer.mkfs (N.disk alpha "d");
      let sfs = N.mount_sfs alpha ~disk_name:"d" ~name:"stress-base" in
      let top =
        N.build_stack alpha ~base:sfs
          [ ("cryptfs", "s-crypt"); ("compfs", "s-comp"); ("coherency", "s-coh") ]
      in
      let rng = ref 99 in
      let next bound =
        rng := ((!rng * 1103515245) + 12345) land 0x3fffffff;
        !rng mod bound
      in
      let model : (string, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
      let live = ref [] in
      let model_write name pos data =
        let old = Option.value (Hashtbl.find_opt model name) ~default:Bytes.empty in
        let len = max (Bytes.length old) (pos + Bytes.length data) in
        let fresh = Bytes.make len '\000' in
        Bytes.blit old 0 fresh 0 (Bytes.length old);
        Bytes.blit data 0 fresh pos (Bytes.length data);
        Hashtbl.replace model name fresh
      in
      for i = 0 to 80 do
        (match next 5 with
        | 0 ->
            let name = Printf.sprintf "s%d" i in
            ignore (S.create top (Util.name name));
            Hashtbl.replace model name Bytes.empty;
            live := name :: !live
        | 1 when !live <> [] ->
            let name = List.nth !live (next (List.length !live)) in
            S.remove top (Util.name name);
            Hashtbl.remove model name;
            live := List.filter (fun n -> n <> name) !live
        | 2 when !live <> [] ->
            let name = List.nth !live (next (List.length !live)) in
            let keep = next 6000 in
            Sp_core.File.truncate (S.open_file top (Util.name name)) keep;
            let old = Hashtbl.find model name in
            let fresh = Bytes.make keep '\000' in
            Bytes.blit old 0 fresh 0 (min keep (Bytes.length old));
            Hashtbl.replace model name fresh
        | _ when !live <> [] ->
            let name = List.nth !live (next (List.length !live)) in
            let pos = next 8000 and len = 1 + next 3000 in
            let data = Util.pattern_bytes ~seed:(i + 17) len in
            ignore (Sp_core.File.write (S.open_file top (Util.name name)) ~pos data);
            model_write name pos data
        | _ -> ());
        if i mod 20 = 0 then begin
          S.sync top;
          Alcotest.(check bool) "coherency invariant holds mid-run" true
            (Sp_coherency.Coherency_layer.invariant_holds sfs)
        end
      done;
      (* Every surviving file matches the model. *)
      Hashtbl.iter
        (fun name expected ->
          let f = S.open_file top (Util.name name) in
          Alcotest.(check int) (name ^ " length") (Bytes.length expected)
            (Sp_core.File.stat f).Sp_vm.Attr.len;
          Util.check_bytes (name ^ " content") expected (Sp_core.File.read_all f))
        model;
      (* And the base volume is structurally sound. *)
      S.sync top;
      S.sync sfs;
      let problems = Sp_sfs.Fsck.check (N.disk alpha "d") in
      Alcotest.(check int)
        (Printf.sprintf "fsck clean (%s)"
           (String.concat "; "
              (List.map (Format.asprintf "%a" Sp_sfs.Fsck.pp_problem) problems)))
        0 (List.length problems))

let suite =
  [
    Alcotest.test_case "4.5 walk-through: DFS on COMPFS on SFS" `Quick
      test_walkthrough_45;
    Alcotest.test_case "fig3: stack graph" `Quick test_fig3_graph;
    Alcotest.test_case "four-layer tower" `Quick test_crypt_under_comp;
    Alcotest.test_case "compression savings behind DFS" `Quick
      test_dfs_serves_compressed_savings;
    Alcotest.test_case "dfs over transform tower (regression)" `Quick
      test_dfs_on_transform_tower;
    Alcotest.test_case "tower under memory pressure" `Quick
      test_tower_under_memory_pressure;
    Alcotest.test_case "stress: tower + model + fsck" `Quick
      test_stress_full_stack_with_fsck;
  ]
