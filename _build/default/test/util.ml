(* Shared helpers for the test suites. *)

(* Run [f] in a clean simulated world: fresh clock, metrics, fast cost
   model (tests assert on event counts, not simulated time, unless they
   install a model themselves). *)
let in_world ?(model = Sp_sim.Cost_model.fast) f =
  Sp_sim.Simclock.reset ();
  Sp_sim.Metrics.reset ();
  Sp_sim.Cost_model.with_model model f

let check_bytes msg expected actual =
  Alcotest.(check string) msg (Bytes.to_string expected) (Bytes.to_string actual)

let check_str msg expected actual =
  Alcotest.(check string) msg expected (Bytes.to_string actual)

let bytes_of_string = Bytes.of_string

(* Deterministic pseudo-random bytes (avoid stdlib Random to keep suites
   reproducible regardless of seeding). *)
let pattern_bytes ?(seed = 1) n =
  let b = Bytes.create n in
  let state = ref seed in
  for i = 0 to n - 1 do
    state := (!state * 1103515245) + 12345;
    Bytes.set b i (Char.chr ((!state lsr 16) land 0xff))
  done;
  b

let name = Sp_naming.Sname.of_string

(* A formatted disk of [blocks] blocks (default 2048 = 8 MB). *)
let fresh_disk ?(blocks = 2048) ?label () =
  let disk = Sp_blockdev.Disk.create ?label ~blocks () in
  Sp_sfs.Disk_layer.mkfs disk;
  disk

let qcheck_case ?count name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ?count ~name gen prop)
