module C = Sp_naming.Context
module N = Sp_naming.Sname

type C.obj += Leaf of int

let make_ctx label =
  C.make ~domain:(Sp_obj.Sdomain.create ("ns:" ^ label)) ~label ()

let test_sname_parsing () =
  let check s expected =
    Alcotest.(check (list string)) s expected (N.components (N.of_string s))
  in
  check "/a/b/c" [ "a"; "b"; "c" ];
  check "a//b/" [ "a"; "b" ];
  check "/" [];
  check "./a/./b" [ "a"; "b" ];
  Alcotest.(check string) "round trip" "a/b" (N.to_string (N.of_string "/a/b"));
  Alcotest.(check string) "empty prints as /" "/" (N.to_string (N.of_string "/"))

let test_sname_rejects_dotdot () =
  Alcotest.check_raises "dotdot"
    (Invalid_argument "Sname.of_string: '..' is not supported") (fun () ->
      ignore (N.of_string "a/../b"))

let test_bind_resolve () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      C.bind root (N.of_string "x") (Leaf 1);
      (match C.resolve root (N.of_string "x") with
      | Leaf 1 -> ()
      | _ -> Alcotest.fail "wrong object");
      Alcotest.check_raises "rebinding same name"
        (C.Already_bound "root/x") (fun () -> C.bind root (N.of_string "x") (Leaf 2)))

let test_compound_resolution () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      let a = make_ctx "a" in
      let b = make_ctx "b" in
      C.bind root (N.of_string "a") (C.Context a);
      C.bind a (N.of_string "b") (C.Context b);
      C.bind b (N.of_string "leaf") (Leaf 42);
      match C.resolve root (N.of_string "a/b/leaf") with
      | Leaf 42 -> ()
      | _ -> Alcotest.fail "compound resolution failed")

let test_resolve_unbound () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      Alcotest.check_raises "unbound" (C.Unbound "root/nope") (fun () ->
          ignore (C.resolve root (N.of_string "nope"))))

let test_multiple_names_one_object () =
  (* "An object can be bound to several different names in possibly several
     different contexts at the same time." *)
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      let other = make_ctx "other" in
      C.bind root (N.of_string "first") (Leaf 7);
      C.bind root (N.of_string "second") (Leaf 7);
      C.bind root (N.of_string "sub") (C.Context other);
      C.bind other (N.of_string "third") (Leaf 7);
      let get n = match C.resolve root (N.of_string n) with
        | Leaf v -> v
        | _ -> Alcotest.fail "not a leaf"
      in
      Alcotest.(check int) "first" 7 (get "first");
      Alcotest.(check int) "second" 7 (get "second");
      Alcotest.(check int) "third" 7 (get "sub/third"))

let test_unbind_and_list () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      C.bind root (N.of_string "b") (Leaf 2);
      C.bind root (N.of_string "a") (Leaf 1);
      Alcotest.(check (list string)) "sorted list" [ "a"; "b" ]
        (C.list root (N.of_string "/"));
      C.unbind root (N.of_string "a");
      Alcotest.(check (list string)) "after unbind" [ "b" ]
        (C.list root (N.of_string "/"));
      Alcotest.check_raises "unbind missing" (C.Unbound "root/a") (fun () ->
          C.unbind root (N.of_string "a")))

let test_rebind_replaces () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      C.bind root (N.of_string "x") (Leaf 1);
      C.rebind root (N.of_string "x") (Leaf 2);
      match C.resolve root (N.of_string "x") with
      | Leaf 2 -> ()
      | _ -> Alcotest.fail "rebind did not replace")

let test_acl_enforcement () =
  Util.in_world (fun () ->
      let domain = Sp_obj.Sdomain.create "secure" in
      let acl = Sp_naming.Acl.make [ ("alice", [ Sp_naming.Acl.Resolve; Bind ]) ] in
      let ctx = C.make ~domain ~label:"secure" ~acl () in
      C.bind ~principal:"alice" ctx (N.of_string "x") (Leaf 1);
      (match C.resolve ~principal:"alice" ctx (N.of_string "x") with
      | Leaf 1 -> ()
      | _ -> Alcotest.fail "alice resolve");
      (* bob can do nothing *)
      (try
         ignore (C.resolve ~principal:"bob" ctx (N.of_string "x"));
         Alcotest.fail "bob should be denied"
       with C.Denied _ -> ());
      (* alice cannot unbind *)
      try
        C.unbind ~principal:"alice" ctx (N.of_string "x");
        Alcotest.fail "alice unbind should be denied"
      with C.Denied _ -> ())

let test_acl_grant_revoke () =
  let acl = Sp_naming.Acl.make [] in
  Alcotest.(check bool) "initially denied" false
    (Sp_naming.Acl.permits acl ~principal:"p" Sp_naming.Acl.Resolve);
  let acl = Sp_naming.Acl.grant acl ~principal:"p" [ Sp_naming.Acl.Resolve ] in
  Alcotest.(check bool) "granted" true
    (Sp_naming.Acl.permits acl ~principal:"p" Sp_naming.Acl.Resolve);
  let acl = Sp_naming.Acl.revoke acl ~principal:"p" in
  Alcotest.(check bool) "revoked" false
    (Sp_naming.Acl.permits acl ~principal:"p" Sp_naming.Acl.Resolve)

let test_resolution_crosses_domains () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      let sub = make_ctx "sub" in
      C.bind root (N.of_string "sub") (C.Context sub);
      C.bind sub (N.of_string "leaf") (Leaf 1);
      let before = Sp_sim.Metrics.snapshot () in
      ignore (C.resolve root (N.of_string "sub/leaf"));
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      (* One door call into root's domain, one into sub's. *)
      Alcotest.(check int) "two crossings" 2 d.Sp_sim.Metrics.cross_domain_calls)

let test_mkdir_path () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      let domain = Sp_obj.Sdomain.create "mk" in
      let deep = C.mkdir_path root (N.of_string "a/b/c") ~domain in
      C.bind deep (N.of_string "leaf") (Leaf 9);
      match C.resolve root (N.of_string "a/b/c/leaf") with
      | Leaf 9 -> ()
      | _ -> Alcotest.fail "mkdir_path chain broken")

let test_namespace_overlay () =
  Util.in_world (fun () ->
      let shared = make_ctx "shared" in
      C.bind shared (N.of_string "common") (Leaf 1);
      C.bind shared (N.of_string "both") (Leaf 1);
      let d1 = Sp_obj.Sdomain.create "d1" in
      let ns1 = Sp_naming.Namespace.create ~shared ~domain:d1 in
      let ns2 =
        Sp_naming.Namespace.create ~shared ~domain:(Sp_obj.Sdomain.create "d2")
      in
      Sp_naming.Namespace.customize ns1 (N.of_string "private") (Leaf 10);
      Sp_naming.Namespace.customize ns1 (N.of_string "both") (Leaf 20);
      let v1 = Sp_naming.Namespace.as_context ns1 in
      let v2 = Sp_naming.Namespace.as_context ns2 in
      let get ctx n =
        match C.resolve ctx (N.of_string n) with
        | Leaf v -> Some v
        | _ -> None
        | exception C.Unbound _ -> None
      in
      Alcotest.(check (option int)) "ns1 sees shared" (Some 1) (get v1 "common");
      Alcotest.(check (option int)) "ns1 sees private" (Some 10) (get v1 "private");
      Alcotest.(check (option int)) "ns1 overlay wins" (Some 20) (get v1 "both");
      Alcotest.(check (option int)) "ns2 lacks private" None (get v2 "private");
      Alcotest.(check (option int)) "ns2 sees shared both" (Some 1) (get v2 "both"))

let test_name_cache () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      let sub = make_ctx "sub" in
      C.bind root (N.of_string "sub") (C.Context sub);
      C.bind sub (N.of_string "leaf") (Leaf 5);
      let cache = Sp_naming.Name_cache.create ~capacity:8 () in
      let n = N.of_string "sub/leaf" in
      ignore (Sp_naming.Name_cache.resolve cache root n);
      let before = Sp_sim.Metrics.snapshot () in
      ignore (Sp_naming.Name_cache.resolve cache root n);
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "cached hit crosses no domains" 0
        d.Sp_sim.Metrics.cross_domain_calls;
      let stats = Sp_naming.Name_cache.stats cache in
      Alcotest.(check int) "one hit" 1 stats.Sp_naming.Name_cache.hits;
      Alcotest.(check int) "one miss" 1 stats.Sp_naming.Name_cache.misses;
      Sp_naming.Name_cache.invalidate cache n;
      ignore (Sp_naming.Name_cache.resolve cache root n);
      let stats = Sp_naming.Name_cache.stats cache in
      Alcotest.(check int) "miss after invalidate" 2 stats.Sp_naming.Name_cache.misses)

let test_name_cache_capacity () =
  Util.in_world (fun () ->
      let root = make_ctx "root" in
      for i = 0 to 9 do
        C.bind root (N.of_string (Printf.sprintf "x%d" i)) (Leaf i)
      done;
      let cache = Sp_naming.Name_cache.create ~capacity:4 () in
      for i = 0 to 9 do
        ignore (Sp_naming.Name_cache.resolve cache root
                  (N.of_string (Printf.sprintf "x%d" i)))
      done;
      (* All resolutions still return correct objects despite eviction. *)
      for i = 0 to 9 do
        match Sp_naming.Name_cache.resolve cache root
                (N.of_string (Printf.sprintf "x%d" i))
        with
        | Leaf v -> Alcotest.(check int) "value" i v
        | _ -> Alcotest.fail "wrong object"
      done)

(* Model-based property: a random bind/unbind/resolve schedule against a
   plain Map model. *)
let prop_context_matches_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 60) (triple (int_range 0 2) (int_range 0 7) small_nat))
  in
  Util.qcheck_case ~count:60 "context matches map model" gen (fun ops ->
      Util.in_world (fun () ->
          let ctx = make_ctx "model" in
          let model = Hashtbl.create 8 in
          let keys = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |] in
          let ok = ref true in
          List.iter
            (fun (op, ki, v) ->
              let k = keys.(ki) in
              let kn = N.of_string k in
              match op with
              | 0 -> (
                  match C.bind ctx kn (Leaf v) with
                  | () ->
                      if Hashtbl.mem model k then ok := false
                      else Hashtbl.replace model k v
                  | exception C.Already_bound _ ->
                      if not (Hashtbl.mem model k) then ok := false)
              | 1 -> (
                  match C.unbind ctx kn with
                  | () ->
                      if not (Hashtbl.mem model k) then ok := false
                      else Hashtbl.remove model k
                  | exception C.Unbound _ ->
                      if Hashtbl.mem model k then ok := false)
              | _ -> (
                  match C.resolve ctx kn with
                  | Leaf got ->
                      if Hashtbl.find_opt model k <> Some got then ok := false
                  | _ -> ok := false
                  | exception C.Unbound _ ->
                      if Hashtbl.mem model k then ok := false))
            ops;
          let listed = C.list ctx (N.of_string "/") in
          let expected =
            List.sort String.compare
              (Hashtbl.fold (fun k _ acc -> k :: acc) model [])
          in
          !ok && listed = expected))

let prop_sname_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (oneofl [ "a"; "bb"; "ccc"; "x1"; "under_score"; "d.o.t" ]))
  in
  Util.qcheck_case ~count:100 "sname parse/print roundtrip" gen (fun cs ->
      let s = String.concat "/" cs in
      N.components (N.of_string s) = cs
      && N.to_string (N.of_string s) = s)

let suite =
  [
    Alcotest.test_case "sname parsing" `Quick test_sname_parsing;
    Alcotest.test_case "sname rejects .." `Quick test_sname_rejects_dotdot;
    Alcotest.test_case "bind/resolve" `Quick test_bind_resolve;
    Alcotest.test_case "compound resolution" `Quick test_compound_resolution;
    Alcotest.test_case "resolve unbound" `Quick test_resolve_unbound;
    Alcotest.test_case "multiple names, one object" `Quick
      test_multiple_names_one_object;
    Alcotest.test_case "unbind and list" `Quick test_unbind_and_list;
    Alcotest.test_case "rebind replaces" `Quick test_rebind_replaces;
    Alcotest.test_case "acl enforcement" `Quick test_acl_enforcement;
    Alcotest.test_case "acl grant/revoke" `Quick test_acl_grant_revoke;
    Alcotest.test_case "resolution crosses domains" `Quick
      test_resolution_crosses_domains;
    Alcotest.test_case "mkdir_path" `Quick test_mkdir_path;
    Alcotest.test_case "per-domain namespaces" `Quick test_namespace_overlay;
    Alcotest.test_case "name cache" `Quick test_name_cache;
    Alcotest.test_case "name cache eviction" `Quick test_name_cache_capacity;
    prop_context_matches_model;
    prop_sname_roundtrip;
  ]
