module F = Sp_core.File
module S = Sp_core.Stackable

let ps = Sp_vm.Vm_types.page_size

let make_stack ?(key = "sekrit") () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let disk = Util.fresh_disk ~blocks:2048 () in
  let sfs = Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfs" ~same_domain:false disk in
  let crypt = Sp_cryptfs.Cryptfs.make ~vmm ~name:"cryptfs" ~key () in
  S.stack_on crypt sfs;
  (vmm, sfs, crypt)

let test_cipher_roundtrip () =
  let data = Util.pattern_bytes 1000 in
  let enc = Sp_cryptfs.Cipher.apply ~key:"k" ~page:3 data in
  Alcotest.(check bool) "ciphertext differs" false (Bytes.equal enc data);
  Util.check_bytes "roundtrip" data (Sp_cryptfs.Cipher.apply ~key:"k" ~page:3 enc)

let test_cipher_page_and_key_dependent () =
  let data = Bytes.make 64 'a' in
  let e1 = Sp_cryptfs.Cipher.apply ~key:"k" ~page:0 data in
  let e2 = Sp_cryptfs.Cipher.apply ~key:"k" ~page:1 data in
  let e3 = Sp_cryptfs.Cipher.apply ~key:"other" ~page:0 data in
  Alcotest.(check bool) "page-dependent" false (Bytes.equal e1 e2);
  Alcotest.(check bool) "key-dependent" false (Bytes.equal e1 e3)

let prop_cipher_roundtrip =
  let gen = QCheck2.Gen.(pair (string_size (int_range 0 500)) (int_range 0 100)) in
  Util.qcheck_case ~count:100 "cipher roundtrip" gen (fun (s, page) ->
      let b = Bytes.of_string s in
      Bytes.equal b
        (Sp_cryptfs.Cipher.apply ~key:"k" ~page
           (Sp_cryptfs.Cipher.apply ~key:"k" ~page b)))

let test_basic_io () =
  Util.in_world (fun () ->
      let _vmm, _sfs, crypt = make_stack () in
      let f = S.create crypt (Util.name "secret.txt") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "top secret data"));
      Util.check_str "plaintext via layer" "top secret data" (F.read f ~pos:0 ~len:50);
      Alcotest.(check int) "length passthrough" 15 (F.stat f).Sp_vm.Attr.len)

let test_lower_holds_ciphertext () =
  Util.in_world (fun () ->
      let _vmm, sfs, crypt = make_stack () in
      let f = S.create crypt (Util.name "c") in
      let plain = Util.bytes_of_string "confidential!!" in
      ignore (F.write f ~pos:0 plain);
      F.sync f;
      let lower = S.open_file sfs (Util.name "c") in
      let raw = F.read_all lower in
      Alcotest.(check int) "same length" (Bytes.length plain) (Bytes.length raw);
      Alcotest.(check bool) "ciphertext differs from plaintext" false
        (Bytes.equal raw plain);
      (* And it is exactly the cipher of the plaintext. *)
      Util.check_bytes "deterministic transform" plain
        (Sp_cryptfs.Cipher.apply ~key:"sekrit" ~page:0 raw))

let test_wrong_key_garbles () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let disk = Util.fresh_disk () in
      let sfs =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfs" ~same_domain:false disk
      in
      let crypt1 = Sp_cryptfs.Cryptfs.make ~vmm ~name:"c1" ~key:"right" () in
      S.stack_on crypt1 sfs;
      let f = S.create crypt1 (Util.name "k") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "payload"));
      F.sync f;
      let crypt2 = Sp_cryptfs.Cryptfs.make ~vmm ~name:"c2" ~key:"wrong" () in
      S.stack_on crypt2 sfs;
      let f2 = S.open_file crypt2 (Util.name "k") in
      Alcotest.(check bool) "wrong key yields garbage" false
        (Bytes.equal (F.read f2 ~pos:0 ~len:7) (Util.bytes_of_string "payload")))

let test_multi_page_and_offsets () =
  Util.in_world (fun () ->
      let _vmm, _sfs, crypt = make_stack () in
      let f = S.create crypt (Util.name "big") in
      let data = Util.pattern_bytes ((3 * ps) + 123) in
      ignore (F.write f ~pos:0 data);
      Util.check_bytes "full readback" data (F.read f ~pos:0 ~len:(Bytes.length data));
      (* Cross-page unaligned read. *)
      Util.check_bytes "unaligned window"
        (Bytes.sub data (ps - 10) 50)
        (F.read f ~pos:(ps - 10) ~len:50);
      (* Unaligned overwrite. *)
      let patch = Util.bytes_of_string "PATCHED" in
      ignore (F.write f ~pos:(2 * ps) patch);
      Util.check_str "patch visible" "PATCHED" (F.read f ~pos:(2 * ps) ~len:7))

let test_truncate () =
  Util.in_world (fun () ->
      let _vmm, _sfs, crypt = make_stack () in
      let f = S.create crypt (Util.name "t") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "0123456789"));
      F.truncate f 4;
      Alcotest.(check int) "len" 4 (F.stat f).Sp_vm.Attr.len;
      Util.check_str "clipped" "0123" (F.read f ~pos:0 ~len:20))

let test_persistence () =
  Util.in_world (fun () ->
      let _vmm, sfs, crypt = make_stack () in
      let f = S.create crypt (Util.name "p") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "survive"));
      S.sync crypt;
      let vmm2 = Sp_vm.Vmm.create ~node:"local" "vmm2" in
      let crypt2 = Sp_cryptfs.Cryptfs.make ~vmm:vmm2 ~name:"cryptfs2" ~key:"sekrit" () in
      S.stack_on crypt2 sfs;
      Util.check_str "reload with same key" "survive"
        (F.read (S.open_file crypt2 (Util.name "p")) ~pos:0 ~len:7))

let test_mapped_access () =
  Util.in_world (fun () ->
      let vmm, _sfs, crypt = make_stack () in
      let f = S.create crypt (Util.name "m") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "mapped plaintext"));
      let m = Sp_vm.Vmm.map vmm f.F.f_mem in
      Util.check_str "mapping decrypts" "mapped plaintext"
        (Sp_vm.Vmm.read m ~pos:0 ~len:16))

let prop_cryptfs_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 10) (pair (int_range 0 (2 * ps)) (int_range 1 300)))
  in
  Util.qcheck_case ~count:20 "cryptfs random writes match model" gen (fun writes ->
      Util.in_world (fun () ->
          let _vmm, _sfs, crypt = make_stack () in
          let f = S.create crypt (Util.name "prop") in
          let size = (2 * ps) + 300 in
          let model = Bytes.make size '\000' in
          let len = ref 0 in
          List.iteri
            (fun i (pos, n) ->
              let data = Util.pattern_bytes ~seed:(i + 91) n in
              ignore (F.write f ~pos data);
              Bytes.blit data 0 model pos n;
              len := max !len (pos + n))
            writes;
          Bytes.equal (F.read f ~pos:0 ~len:size) (Bytes.sub model 0 !len)))

let suite =
  [
    Alcotest.test_case "cipher roundtrip" `Quick test_cipher_roundtrip;
    Alcotest.test_case "cipher page/key dependence" `Quick
      test_cipher_page_and_key_dependent;
    prop_cipher_roundtrip;
    Alcotest.test_case "basic io" `Quick test_basic_io;
    Alcotest.test_case "lower holds ciphertext" `Quick test_lower_holds_ciphertext;
    Alcotest.test_case "wrong key garbles" `Quick test_wrong_key_garbles;
    Alcotest.test_case "multi-page and offsets" `Quick test_multi_page_and_offsets;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "persistence" `Quick test_persistence;
    Alcotest.test_case "mapped access" `Quick test_mapped_access;
    prop_cryptfs_model;
  ]
