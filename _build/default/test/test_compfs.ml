module F = Sp_core.File
module S = Sp_core.Stackable
module V = Sp_vm.Vm_types

let ps = V.page_size

let make_stack ?(coherent = true) () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let disk = Util.fresh_disk ~blocks:4096 () in
  let sfs = Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfs" ~same_domain:false disk in
  let comp = Sp_compfs.Compfs.make ~coherent ~vmm ~name:"compfs" () in
  S.stack_on comp sfs;
  (vmm, sfs, comp)

(* --- Lz --- *)

let test_lz_roundtrip_basic () =
  let cases =
    [
      "";
      "a";
      "hello world";
      String.concat "" (List.init 100 (fun _ -> "abcabcabc"));
      String.init 300 (fun i -> Char.chr (i mod 256));
      Bytes.to_string (Bytes.make 5000 'x');
    ]
  in
  List.iter
    (fun s ->
      let b = Bytes.of_string s in
      Util.check_bytes "roundtrip" b (Sp_compfs.Lz.decompress (Sp_compfs.Lz.compress b)))
    cases

let test_lz_compresses_redundant () =
  let redundant = Bytes.make ps 'z' in
  let c = Sp_compfs.Lz.compress redundant in
  Alcotest.(check bool) "shrinks redundant page" true (Bytes.length c < ps / 4)

let test_lz_incompressible_bounded () =
  let noise = Util.pattern_bytes ps in
  let c = Sp_compfs.Lz.compress noise in
  Alcotest.(check bool) "bounded expansion" true (Bytes.length c <= ps + 6)

let test_lz_rejects_corrupt () =
  Alcotest.(check bool) "corrupt header rejected" true
    (try
       ignore (Sp_compfs.Lz.decompress (Bytes.of_string "zz"));
       false
     with Invalid_argument _ -> true);
  let bogus = Bytes.make 10 '\255' in
  Alcotest.(check bool) "unknown kind rejected" true
    (try
       ignore (Sp_compfs.Lz.decompress bogus);
       false
     with Invalid_argument _ -> true)

let prop_lz_roundtrip =
  let gen =
    QCheck2.Gen.(
      oneof
        [
          string_size (int_range 0 2000);
          (* Highly repetitive inputs stress the match encoder. *)
          map
            (fun (s, n) ->
              String.concat "" (List.init (min 50 (n + 1)) (fun _ -> s)))
            (pair (string_size (int_range 1 20)) (int_range 1 50));
        ])
  in
  Util.qcheck_case ~count:200 "lz roundtrip" gen (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Sp_compfs.Lz.decompress (Sp_compfs.Lz.compress b)))

(* --- COMPFS --- *)

let test_basic_io () =
  Util.in_world (fun () ->
      let _vmm, _sfs, comp = make_stack () in
      let f = S.create comp (Util.name "doc.txt") in
      let n = F.write f ~pos:0 (Util.bytes_of_string "compressed world") in
      Alcotest.(check int) "written" 16 n;
      Util.check_str "read back" "compressed world" (F.read f ~pos:0 ~len:100);
      Alcotest.(check int) "logical length" 16 (F.stat f).Sp_vm.Attr.len)

let test_lower_holds_compressed () =
  Util.in_world (fun () ->
      let _vmm, sfs, comp = make_stack () in
      let f = S.create comp (Util.name "z") in
      let payload = Bytes.make (4 * ps) 'q' in
      ignore (F.write f ~pos:0 payload);
      S.sync comp;
      (* The container in the lower fs holds compressed chunks, not the
         plain payload. *)
      let lower = S.open_file sfs (Util.name "z") in
      let raw = F.read_all lower in
      Alcotest.(check bool) "container smaller than logical (after compaction)"
        true
        (Bytes.length raw < 4 * ps);
      Alcotest.(check int) "savings observable via api" (Bytes.length raw)
        (Sp_compfs.Compfs.container_bytes comp (Util.name "z"));
      Alcotest.(check int) "logical api" (4 * ps)
        (Sp_compfs.Compfs.logical_bytes comp (Util.name "z")))

let test_persistence () =
  Util.in_world (fun () ->
      let vmm, _sfs, comp = make_stack () in
      ignore vmm;
      let f = S.create comp (Util.name "p") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "persist me please"));
      S.sync comp;
      (* Fresh compfs over the same lower file system re-reads containers. *)
      let vmm2 = Sp_vm.Vmm.create ~node:"local" "vmm2" in
      let comp2 = Sp_compfs.Compfs.make ~vmm:vmm2 ~name:"compfs2" () in
      S.stack_on comp2 (List.hd (comp.S.sfs_unders ()));
      let f2 = S.open_file comp2 (Util.name "p") in
      Util.check_str "reload" "persist me please" (F.read f2 ~pos:0 ~len:17);
      Alcotest.(check int) "length reload" 17 (F.stat f2).Sp_vm.Attr.len)

let test_random_overwrites () =
  Util.in_world (fun () ->
      let _vmm, _sfs, comp = make_stack () in
      let f = S.create comp (Util.name "rw") in
      let model = Bytes.make (3 * ps) '\000' in
      let cases = [ (0, 100); (ps - 50, 120); (2 * ps, ps); (10, 10); (ps, 1) ] in
      List.iteri
        (fun i (pos, len) ->
          let data = Util.pattern_bytes ~seed:(i + 3) len in
          ignore (F.write f ~pos data);
          Bytes.blit data 0 model pos len)
        cases;
      let total = (2 * ps) + ps in
      Util.check_bytes "content matches model" (Bytes.sub model 0 total)
        (F.read f ~pos:0 ~len:total))

let test_truncate () =
  Util.in_world (fun () ->
      let _vmm, _sfs, comp = make_stack () in
      let f = S.create comp (Util.name "t") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "0123456789"));
      F.truncate f 4;
      Alcotest.(check int) "len" 4 (F.stat f).Sp_vm.Attr.len;
      Util.check_str "clipped" "0123" (F.read f ~pos:0 ~len:20);
      ignore (F.write f ~pos:6 (Util.bytes_of_string "XY"));
      Util.check_str "zero gap" "0123\000\000XY" (F.read f ~pos:0 ~len:8))

let test_mapped_access () =
  Util.in_world (fun () ->
      let vmm, _sfs, comp = make_stack () in
      let f = S.create comp (Util.name "m") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "mapped compfs"));
      let m = Sp_vm.Vmm.map vmm f.F.f_mem in
      Util.check_str "mapping decompresses" "mapped compfs"
        (Sp_vm.Vmm.read m ~pos:0 ~len:13);
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "MAPPED");
      Sp_vm.Vmm.msync m;
      Util.check_str "mapped writes land compressed" "MAPPED compfs"
        (F.read f ~pos:0 ~len:13))

let test_fig5_incoherent () =
  (* Non-coherent stacking: direct writes to the container are NOT seen by
     COMPFS (its decompressed view stays stale). *)
  Util.in_world (fun () ->
      let _vmm, sfs, comp = make_stack ~coherent:false () in
      let f = S.create comp (Util.name "i") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "original data!!"));
      let before = F.read f ~pos:0 ~len:15 in
      (* Clobber the container directly through the lower file system. *)
      let lower = S.open_file sfs (Util.name "i") in
      ignore (F.write lower ~pos:ps (Bytes.make 64 '!'));
      let after = F.read f ~pos:0 ~len:15 in
      Util.check_bytes "compfs view unchanged (incoherent by design)" before after)

let test_fig6_coherent () =
  (* Coherent stacking: the C3-P3 connection lets the lower layer revoke
     COMPFS's state, so direct container writes become visible. *)
  Util.in_world (fun () ->
      let _vmm, sfs, comp = make_stack ~coherent:true () in
      let f = S.create comp (Util.name "c") in
      ignore (F.write f ~pos:0 (Bytes.make ps 'a'));
      S.sync comp;
      Util.check_str "initial" "aaaa" (F.read f ~pos:0 ~len:4);
      (* Rewrite the whole container through the lower file system with a
         fresh valid container (one chunk of 'b' page). *)
      let replacement =
        let chunk = Sp_compfs.Lz.compress (Bytes.make ps 'b') in
        let clen = Bytes.length chunk in
        let h = Bytes.make 8 '\000' in
        Bytes.set_uint16_le h 0 0xc4a9;
        Bytes.set_uint16_le h 2 0;
        Bytes.set_int32_le h 4 (Int32.of_int clen);
        let header = Bytes.make 24 '\000' in
        Bytes.set_int32_le header 0 0x434d5046l;
        Bytes.set_int64_le header 4 (Int64.of_int ps);
        Bytes.set_int64_le header 12 (Int64.of_int (ps + 8 + clen));
        (header, Bytes.cat h chunk)
      in
      let header, log = replacement in
      let lower = S.open_file sfs (Util.name "c") in
      ignore (F.write lower ~pos:ps log);
      ignore (F.write lower ~pos:0 header);
      Util.check_str "compfs sees rewritten container" "bbbb"
        (F.read f ~pos:0 ~len:4))

let test_coherent_upward_via_coherency_layer () =
  (* §6.3 composition: coherency layer on compfs gives coherent sharing of
     compfs files between two cache managers. *)
  Util.in_world (fun () ->
      let vmm, _sfs, comp = make_stack () in
      let top = Sp_coherency.Coherency_layer.make ~vmm ~name:"cohtop" () in
      S.stack_on top comp;
      let f = S.create top (Util.name "shared") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "v1 data"));
      let vmm_b = Sp_vm.Vmm.create ~node:"b" "vmm_b" in
      let mb = Sp_vm.Vmm.map vmm_b f.F.f_mem in
      Util.check_str "B reads through full stack" "v1 data"
        (Sp_vm.Vmm.read mb ~pos:0 ~len:7);
      Sp_vm.Vmm.write mb ~pos:0 (Util.bytes_of_string "v2");
      Util.check_str "A sees B's write" "v2 data" (F.read f ~pos:0 ~len:7))

let test_compaction_reclaims () =
  Util.in_world (fun () ->
      let _vmm, _sfs, comp = make_stack () in
      let f = S.create comp (Util.name "churn") in
      (* Overwrite the same page many times: log grows, compaction shrinks. *)
      for i = 0 to 20 do
        ignore (F.write f ~pos:0 (Util.pattern_bytes ~seed:i ps));
        F.sync f
      done;
      let before = Sp_compfs.Compfs.container_bytes comp (Util.name "churn") in
      S.sync comp;
      let after = Sp_compfs.Compfs.container_bytes comp (Util.name "churn") in
      Alcotest.(check bool) "compaction reclaims space" true (after <= before);
      Alcotest.(check bool) "single live chunk remains" true (after < (2 * ps) + 64);
      Util.check_bytes "data survives compaction" (Util.pattern_bytes ~seed:20 ps)
        (F.read f ~pos:0 ~len:ps))

let test_dirs_and_remove () =
  Util.in_world (fun () ->
      let _vmm, _sfs, comp = make_stack () in
      S.mkdir comp (Util.name "d");
      let f = S.create comp (Util.name "d/x") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "in dir"));
      Util.check_str "nested io" "in dir"
        (F.read (S.open_file comp (Util.name "d/x")) ~pos:0 ~len:6);
      S.remove comp (Util.name "d/x");
      Alcotest.check_raises "gone" (Sp_core.Fserr.No_such_file "d/x") (fun () ->
          ignore (S.open_file comp (Util.name "d/x"))))

let prop_compfs_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 12) (pair (int_range 0 (3 * ps)) (int_range 1 500)))
  in
  Util.qcheck_case ~count:20 "compfs random writes match model" gen (fun writes ->
      Util.in_world (fun () ->
          let _vmm, _sfs, comp = make_stack () in
          let f = S.create comp (Util.name "prop") in
          let size = (3 * ps) + 500 in
          let model = Bytes.make size '\000' in
          let len = ref 0 in
          List.iteri
            (fun i (pos, n) ->
              let data = Util.pattern_bytes ~seed:(i + 41) n in
              ignore (F.write f ~pos data);
              Bytes.blit data 0 model pos n;
              len := max !len (pos + n))
            writes;
          let got = F.read f ~pos:0 ~len:size in
          Bytes.equal got (Bytes.sub model 0 !len)))

let suite =
  [
    Alcotest.test_case "lz roundtrip basics" `Quick test_lz_roundtrip_basic;
    Alcotest.test_case "lz compresses redundancy" `Quick test_lz_compresses_redundant;
    Alcotest.test_case "lz incompressible bounded" `Quick test_lz_incompressible_bounded;
    Alcotest.test_case "lz rejects corrupt input" `Quick test_lz_rejects_corrupt;
    prop_lz_roundtrip;
    Alcotest.test_case "basic io" `Quick test_basic_io;
    Alcotest.test_case "lower holds compressed data" `Quick test_lower_holds_compressed;
    Alcotest.test_case "persistence across instances" `Quick test_persistence;
    Alcotest.test_case "random overwrites" `Quick test_random_overwrites;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "mapped access" `Quick test_mapped_access;
    Alcotest.test_case "fig5: incoherent stacking" `Quick test_fig5_incoherent;
    Alcotest.test_case "fig6: coherent stacking" `Quick test_fig6_coherent;
    Alcotest.test_case "coherent upward via 6.3" `Quick
      test_coherent_upward_via_coherency_layer;
    Alcotest.test_case "compaction reclaims space" `Quick test_compaction_reclaims;
    Alcotest.test_case "dirs and remove" `Quick test_dirs_and_remove;
    prop_compfs_model;
  ]
