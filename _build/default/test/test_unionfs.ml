module F = Sp_core.File
module S = Sp_core.Stackable
module U = Sp_unionfs.Unionfs

(* Union of a writable top over two read-only lowers, each a full SFS. *)
let make_stack () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let mk name =
    Sp_coherency.Spring_sfs.make_split ~vmm ~name ~same_domain:false
      (Util.fresh_disk ())
  in
  let top = mk "top" in
  let lower1 = mk "lower1" in
  let lower2 = mk "lower2" in
  (* Populate the lower branches before unioning. *)
  let seed fs name text =
    let f = S.create fs (Util.name name) in
    ignore (F.write f ~pos:0 (Util.bytes_of_string text))
  in
  seed lower1 "shared" "from lower1";
  seed lower2 "shared" "from lower2";
  seed lower1 "only1" "exclusive to lower1";
  seed lower2 "only2" "exclusive to lower2";
  S.mkdir lower1 (Util.name "docs");
  seed lower1 "docs/readme" "lower1 readme";
  let union = U.make ~vmm ~name:"union" () in
  S.stack_on union top;
  S.stack_on union lower1;
  S.stack_on union lower2;
  (vmm, top, lower1, lower2, union)

let test_branch_order () =
  Util.in_world (fun () ->
      let _vmm, _top, _l1, _l2, union = make_stack () in
      (* "shared" resolves to the first branch that has it (lower1). *)
      Util.check_str "first branch wins" "from lower1"
        (F.read (S.open_file union (Util.name "shared")) ~pos:0 ~len:11);
      Alcotest.(check bool) "branch_of reports lower 0" true
        (U.branch_of union (Util.name "shared") = `Lower 0);
      Util.check_str "unique names resolve" "exclusive to lower2"
        (F.read (S.open_file union (Util.name "only2")) ~pos:0 ~len:19))

let test_union_listing () =
  Util.in_world (fun () ->
      let _vmm, _top, _l1, _l2, union = make_stack () in
      Alcotest.(check (list string)) "merged listing"
        [ "docs"; "only1"; "only2"; "shared" ]
        (S.listdir union (Util.name "/"));
      Alcotest.(check (list string)) "nested dir from lower" [ "readme" ]
        (S.listdir union (Util.name "docs")))

let test_copy_up_on_write () =
  Util.in_world (fun () ->
      let _vmm, top, l1, _l2, union = make_stack () in
      let f = S.open_file union (Util.name "only1") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "MODIFIED"));
      Util.check_str "union view updated" "MODIFIED"
        (F.read f ~pos:0 ~len:8);
      F.sync f;
      (* The write landed in the top branch... *)
      Util.check_str "copy-up to top" "MODIFIED"
        (F.read (S.open_file top (Util.name "only1")) ~pos:0 ~len:8);
      Alcotest.(check bool) "branch_of reports top" true
        (U.branch_of union (Util.name "only1") = `Top);
      (* ...and the read-only branch is untouched. *)
      Util.check_str "lower untouched" "exclusive to lower1"
        (F.read (S.open_file l1 (Util.name "only1")) ~pos:0 ~len:19))

let test_copy_up_preserves_tail () =
  Util.in_world (fun () ->
      let _vmm, _top, _l1, _l2, union = make_stack () in
      let f = S.open_file union (Util.name "only1") in
      (* Partial overwrite: the copied-up file keeps the unwritten tail. *)
      ignore (F.write f ~pos:0 (Util.bytes_of_string "X"));
      Util.check_str "tail preserved" "Xxclusive to lower1"
        (F.read f ~pos:0 ~len:19))

let test_nested_copy_up () =
  Util.in_world (fun () ->
      let _vmm, top, _l1, _l2, union = make_stack () in
      let f = S.open_file union (Util.name "docs/readme") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "EDITED"));
      F.sync f;
      (* The directory chain was created in the top branch. *)
      Util.check_str "nested copy-up" "EDITED readme"
        (F.read (S.open_file top (Util.name "docs/readme")) ~pos:0 ~len:13))

let test_create_goes_to_top () =
  Util.in_world (fun () ->
      let _vmm, top, _l1, _l2, union = make_stack () in
      let f = S.create union (Util.name "fresh") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "new file"));
      F.sync f;
      Util.check_str "created in top" "new file"
        (F.read (S.open_file top (Util.name "fresh")) ~pos:0 ~len:8);
      Alcotest.check_raises "duplicate create rejected"
        (Sp_core.Fserr.Already_exists "shared") (fun () ->
          ignore (S.create union (Util.name "shared"))))

let test_whiteout () =
  Util.in_world (fun () ->
      let _vmm, _top, l1, _l2, union = make_stack () in
      S.remove union (Util.name "only1");
      (* Hidden from the union... *)
      Alcotest.check_raises "whited out" (Sp_core.Fserr.No_such_file "only1")
        (fun () -> ignore (S.open_file union (Util.name "only1")));
      Alcotest.(check bool) "hidden from listing" false
        (List.mem "only1" (S.listdir union (Util.name "/")));
      (* ...but still present in the read-only branch. *)
      Util.check_str "lower branch intact" "exclusive to lower1"
        (F.read (S.open_file l1 (Util.name "only1")) ~pos:0 ~len:19);
      (* Re-creating replaces the whiteout with a fresh top file. *)
      let f = S.create union (Util.name "only1") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "reborn"));
      Util.check_str "recreated" "reborn"
        (F.read (S.open_file union (Util.name "only1")) ~pos:0 ~len:6))

let test_remove_shared_hides_all_branches () =
  Util.in_world (fun () ->
      let _vmm, _top, _l1, _l2, union = make_stack () in
      S.remove union (Util.name "shared");
      Alcotest.check_raises "both lower copies hidden"
        (Sp_core.Fserr.No_such_file "shared") (fun () ->
          ignore (S.open_file union (Util.name "shared"))))

let test_mapped_access_with_copy_up () =
  Util.in_world (fun () ->
      let vmm, top, _l1, _l2, union = make_stack () in
      let f = S.open_file union (Util.name "only1") in
      let m = Sp_vm.Vmm.map vmm f.F.f_mem in
      Util.check_str "mapping reads lower branch" "exclusive"
        (Sp_vm.Vmm.read m ~pos:0 ~len:9);
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "EXCLUSIVE");
      Sp_vm.Vmm.msync m;
      (* The mapped write copied the file up. *)
      Util.check_str "mapped write copied up" "EXCLUSIVE"
        (F.read (S.open_file top (Util.name "only1")) ~pos:0 ~len:9))

let test_whiteouts_invisible () =
  Util.in_world (fun () ->
      let _vmm, top, _l1, _l2, union = make_stack () in
      S.remove union (Util.name "only2");
      (* The whiteout implementation detail is visible in the top branch
         but never through the union. *)
      Alcotest.(check bool) "whiteout in top branch" true
        (List.mem ".wh.only2" (S.listdir top (Util.name "/")));
      Alcotest.(check bool) "whiteout hidden in union" false
        (List.exists (fun n -> String.length n >= 4 && String.sub n 0 4 = ".wh.")
           (S.listdir union (Util.name "/"))))

let test_coherent_stack_on_union () =
  (* §6.3 composition over the union: a coherency layer on top arbitrates
     two cache managers. *)
  Util.in_world (fun () ->
      let vmm, _top, _l1, _l2, union = make_stack () in
      let coh = Sp_coherency.Coherency_layer.make ~vmm ~name:"coh-union" () in
      S.stack_on coh union;
      let f = S.open_file coh (Util.name "shared") in
      let vmm_b = Sp_vm.Vmm.create ~node:"b" "vmm_b" in
      let mb = Sp_vm.Vmm.map vmm_b f.F.f_mem in
      Util.check_str "b reads union through coherency" "from lower1"
        (Sp_vm.Vmm.read mb ~pos:0 ~len:11);
      Sp_vm.Vmm.write mb ~pos:0 (Util.bytes_of_string "COHERENT111");
      Util.check_str "a sees b's write" "COHERENT111" (F.read f ~pos:0 ~len:11))

(* Random interleaving of union writes and branch-aware reads against a
   byte-array model. *)
let prop_union_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 15) (pair (int_range 0 2) (int_range 0 2000)))
  in
  Util.qcheck_case ~count:15 "union writes match model" gen (fun ops ->
      Util.in_world (fun () ->
          let _vmm, _top, _l1, _l2, union = make_stack () in
          let f = S.open_file union (Util.name "only1") in
          let initial = "exclusive to lower1" in
          let size = 4096 in
          let model = Bytes.make size '\000' in
          Bytes.blit_string initial 0 model 0 (String.length initial);
          let len = ref (String.length initial) in
          List.iteri
            (fun i (_kind, pos) ->
              let pos = pos mod (size - 64) in
              let data = Util.pattern_bytes ~seed:(i + 5) 64 in
              ignore (F.write f ~pos data);
              Bytes.blit data 0 model pos 64;
              len := max !len (pos + 64))
            ops;
          Bytes.equal (F.read f ~pos:0 ~len:size) (Bytes.sub model 0 !len)))

let suite =
  [
    Alcotest.test_case "branch order" `Quick test_branch_order;
    Alcotest.test_case "union listing" `Quick test_union_listing;
    Alcotest.test_case "copy-up on write" `Quick test_copy_up_on_write;
    Alcotest.test_case "copy-up preserves tail" `Quick test_copy_up_preserves_tail;
    Alcotest.test_case "nested copy-up" `Quick test_nested_copy_up;
    Alcotest.test_case "create goes to top" `Quick test_create_goes_to_top;
    Alcotest.test_case "whiteout" `Quick test_whiteout;
    Alcotest.test_case "remove shared hides all branches" `Quick
      test_remove_shared_hides_all_branches;
    Alcotest.test_case "mapped access with copy-up" `Quick
      test_mapped_access_with_copy_up;
    Alcotest.test_case "whiteouts invisible" `Quick test_whiteouts_invisible;
    Alcotest.test_case "coherency layer over union" `Quick
      test_coherent_stack_on_union;
    prop_union_model;
  ]
