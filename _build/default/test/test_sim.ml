let test_clock_advances () =
  Sp_sim.Simclock.reset ();
  Alcotest.(check int) "starts at zero" 0 (Sp_sim.Simclock.now ());
  Sp_sim.Simclock.advance 150;
  Sp_sim.Simclock.advance 50;
  Alcotest.(check int) "accumulates" 200 (Sp_sim.Simclock.now ())

let test_clock_rejects_negative () =
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Simclock.advance: negative duration") (fun () ->
      Sp_sim.Simclock.advance (-1))

let test_measure () =
  Sp_sim.Simclock.reset ();
  let result, elapsed =
    Sp_sim.Simclock.measure (fun () ->
        Sp_sim.Simclock.advance 42;
        "done")
  in
  Alcotest.(check string) "result" "done" result;
  Alcotest.(check int) "elapsed" 42 elapsed

let test_pp_duration () =
  let s ns = Format.asprintf "%a" Sp_sim.Simclock.pp_duration ns in
  Alcotest.(check string) "ns" "999ns" (s 999);
  Alcotest.(check string) "us" "1.5us" (s 1_500);
  Alcotest.(check string) "ms" "13.70ms" (s 13_700_000);
  Alcotest.(check string) "s" "2.00s" (s 2_000_000_000)

let test_cost_model_with_model () =
  let before = Sp_sim.Cost_model.current () in
  let inner =
    Sp_sim.Cost_model.with_model Sp_sim.Cost_model.fast (fun () ->
        (Sp_sim.Cost_model.current ()).Sp_sim.Cost_model.cross_domain_call_ns)
  in
  Alcotest.(check int) "fast model installed" 1 inner;
  Alcotest.(check bool) "restored" true (Sp_sim.Cost_model.current () == before)

let test_cost_model_restores_on_exn () =
  let before = Sp_sim.Cost_model.current () in
  (try
     Sp_sim.Cost_model.with_model Sp_sim.Cost_model.fast (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after exception" true
    (Sp_sim.Cost_model.current () == before)

let test_metrics_diff () =
  Sp_sim.Metrics.reset ();
  let before = Sp_sim.Metrics.snapshot () in
  Sp_sim.Metrics.incr_disk_reads ();
  Sp_sim.Metrics.incr_disk_reads ();
  Sp_sim.Metrics.incr_net_messages ();
  Sp_sim.Metrics.add_net_bytes 100;
  let after = Sp_sim.Metrics.snapshot () in
  let d = Sp_sim.Metrics.diff ~before ~after in
  Alcotest.(check int) "disk reads" 2 d.Sp_sim.Metrics.disk_reads;
  Alcotest.(check int) "net messages" 1 d.Sp_sim.Metrics.net_messages;
  Alcotest.(check int) "net bytes" 100 d.Sp_sim.Metrics.net_bytes;
  Alcotest.(check int) "untouched counter" 0 d.Sp_sim.Metrics.page_ins

let test_metrics_reset () =
  Sp_sim.Metrics.incr_page_faults ();
  Sp_sim.Metrics.reset ();
  let s = Sp_sim.Metrics.snapshot () in
  Alcotest.(check int) "zeroed" 0 s.Sp_sim.Metrics.page_faults

let suite =
  [
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "clock rejects negative" `Quick test_clock_rejects_negative;
    Alcotest.test_case "measure" `Quick test_measure;
    Alcotest.test_case "pp_duration" `Quick test_pp_duration;
    Alcotest.test_case "with_model scopes" `Quick test_cost_model_with_model;
    Alcotest.test_case "with_model restores on exn" `Quick
      test_cost_model_restores_on_exn;
    Alcotest.test_case "metrics diff" `Quick test_metrics_diff;
    Alcotest.test_case "metrics reset" `Quick test_metrics_reset;
  ]
