test/test_naming.ml: Alcotest Array Hashtbl List Printf QCheck2 Sp_naming Sp_obj Sp_sim String Util
