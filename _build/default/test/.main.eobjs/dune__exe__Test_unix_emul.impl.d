test/test_unix_emul.ml: Alcotest Bytes Fmt Sp_coherency Sp_compfs Sp_core Sp_unix Sp_vm Util
