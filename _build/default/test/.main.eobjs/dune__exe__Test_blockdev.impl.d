test/test_blockdev.ml: Alcotest Array Bytes Fun List QCheck2 Sp_blockdev Sp_sim Util
