test/test_compfs.ml: Alcotest Bytes Char Int32 Int64 List QCheck2 Sp_coherency Sp_compfs Sp_core Sp_vm String Util
