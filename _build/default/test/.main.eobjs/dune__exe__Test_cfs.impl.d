test/test_cfs.ml: Alcotest Sp_cfs Sp_coherency Sp_core Sp_dfs Sp_vm Util
