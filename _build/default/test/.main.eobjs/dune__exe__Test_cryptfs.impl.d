test/test_cryptfs.ml: Alcotest Bytes List QCheck2 Sp_coherency Sp_core Sp_cryptfs Sp_vm Util
