test/test_coherency.ml: Alcotest Array Bytes List Printf QCheck2 Sp_blockdev Sp_coherency Sp_core Sp_obj Sp_sim Sp_vm Util
