test/test_misc.ml: Alcotest Bytes Format List Sp_coherency Sp_core Sp_obj Sp_sfs Sp_sim Sp_unix Sp_versionfs Sp_vm String Util
