test/test_dfs.ml: Alcotest Bytes List QCheck2 Sp_coherency Sp_core Sp_dfs Sp_vm Util
