test/test_core.ml: Alcotest Bytes Char Fun List Sp_coherency Sp_compfs Sp_core Sp_naming Sp_obj Sp_sim Sp_vm Test_naming Util
