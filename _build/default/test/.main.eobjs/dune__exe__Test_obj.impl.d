test/test_obj.ml: Alcotest Sp_obj Sp_sim Util
