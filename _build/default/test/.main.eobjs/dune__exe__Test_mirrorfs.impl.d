test/test_mirrorfs.ml: Alcotest List Sp_coherency Sp_core Sp_mirrorfs Sp_vm Util
