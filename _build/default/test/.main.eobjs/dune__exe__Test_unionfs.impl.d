test/test_unionfs.ml: Alcotest Bytes List QCheck2 Sp_coherency Sp_core Sp_unionfs Sp_vm String Util
