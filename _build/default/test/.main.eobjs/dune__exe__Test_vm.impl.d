test/test_vm.ml: Alcotest Bytes List Printf QCheck2 Sp_sim Sp_vm Util
