test/test_table_shapes.ml: Alcotest Float Printf Sp_baseline Sp_benchlib Sp_blockdev Sp_coherency Sp_core Sp_naming Sp_sim Sp_vm Util
