test/test_baseline.ml: Alcotest Sp_baseline Sp_blockdev Sp_core Sp_sfs Sp_sim Sp_vm Util
