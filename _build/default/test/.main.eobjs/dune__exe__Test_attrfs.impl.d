test/test_attrfs.ml: Alcotest Array Bytes Hashtbl List QCheck2 Sp_attrfs Sp_coherency Sp_core Sp_vm Util
