test/test_sim.ml: Alcotest Format Sp_sim
