test/test_fsck.ml: Alcotest Bytes Format List Printf Sp_blockdev Sp_coherency Sp_compfs Sp_core Sp_naming Sp_sfs Sp_vm String Util
