test/test_integration.ml: Alcotest Bytes Format Hashtbl List Option Printf Sp_coherency Sp_compfs Sp_core Sp_dfs Sp_naming Sp_node Sp_sfs Sp_vm String Util
