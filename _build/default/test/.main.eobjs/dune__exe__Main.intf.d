test/main.mli:
