test/test_faults.ml: Alcotest Bytes Printf Sp_baseline Sp_blockdev Sp_coherency Sp_compfs Sp_core Sp_cryptfs Sp_mirrorfs Sp_naming Sp_obj Sp_sfs Sp_vm Util
