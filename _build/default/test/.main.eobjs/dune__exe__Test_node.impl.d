test/test_node.ml: Alcotest Sp_core Sp_dfs Sp_naming Sp_node Sp_obj Sp_sfs Test_naming Util
