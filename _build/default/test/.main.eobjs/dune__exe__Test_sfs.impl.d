test/test_sfs.ml: Alcotest Array Bytes Hashtbl List Option QCheck2 Sp_blockdev Sp_core Sp_naming Sp_obj Sp_sfs Sp_vm String Util
