test/util.ml: Alcotest Bytes Char QCheck2 QCheck_alcotest Sp_blockdev Sp_naming Sp_sfs Sp_sim
