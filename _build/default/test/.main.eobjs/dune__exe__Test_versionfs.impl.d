test/test_versionfs.ml: Alcotest Sp_coherency Sp_core Sp_versionfs Sp_vm Util
