module F = Sp_core.File
module S = Sp_core.Stackable
module V = Sp_vm.Vm_types
module CL = Sp_coherency.Coherency_layer

let ps = V.page_size

(* An SFS (coherency on disk) plus the node VMM. *)
let make_sfs ?(blocks = 2048) ?(same_domain = false) () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let disk = Util.fresh_disk ~blocks () in
  let sfs = Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfs" ~same_domain disk in
  (vmm, disk, sfs)

let test_basic_io () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "a.txt") in
      let n = F.write f ~pos:0 (Util.bytes_of_string "through the stack") in
      Alcotest.(check int) "written" 17 n;
      Util.check_str "read back" "through the stack" (F.read f ~pos:0 ~len:50);
      Alcotest.(check int) "stat length" 17 (F.stat f).Sp_vm.Attr.len)

let test_reopen_same_object () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      ignore (S.create sfs (Util.name "f"));
      let a = S.open_file sfs (Util.name "f") in
      let b = S.open_file sfs (Util.name "f") in
      Alcotest.(check bool) "memoised wrapper" true (a == b))

let test_data_persisted_on_sync () =
  Util.in_world (fun () ->
      let vmm, disk, sfs = make_sfs () in
      ignore vmm;
      let f = S.create sfs (Util.name "p") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "durable"));
      S.sync sfs;
      (* Remount the device cold: both layers fresh. *)
      let vmm2 = Sp_vm.Vmm.create ~node:"local" "vmm2" in
      let sfs2 =
        Sp_coherency.Spring_sfs.make_split ~vmm:vmm2 ~name:"sfs2" ~same_domain:false
          disk
      in
      let f2 = S.open_file sfs2 (Util.name "p") in
      Util.check_str "persisted through coherency layer" "durable"
        (F.read f2 ~pos:0 ~len:7);
      Alcotest.(check int) "length persisted" 7 (F.stat f2).Sp_vm.Attr.len)

let test_cached_read_no_lower_calls () =
  (* Table 2: when the coherency layer caches data, no calls go to the
     lower layer. *)
  Util.in_world (fun () ->
      let _vmm, disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "c") in
      ignore (F.write f ~pos:0 (Util.pattern_bytes 4096));
      ignore (F.read f ~pos:0 ~len:4096);
      (* warm *)
      Sp_blockdev.Disk.reset_stats disk;
      let before = Sp_sim.Metrics.snapshot () in
      ignore (F.read f ~pos:0 ~len:4096);
      ignore (F.stat f);
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "no page-ins" 0 d.Sp_sim.Metrics.page_ins;
      Alcotest.(check int) "no attr fetches" 0 d.Sp_sim.Metrics.attr_fetches;
      Alcotest.(check int) "no disk reads" 0
        (Sp_blockdev.Disk.stats disk).Sp_blockdev.Disk.reads)

let test_uncached_read_hits_disk () =
  Util.in_world (fun () ->
      let _vmm, disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "u") in
      ignore (F.write f ~pos:0 (Util.pattern_bytes 4096));
      S.sync sfs;
      S.drop_caches sfs;
      Sp_vm.Vmm.drop_caches _vmm;
      Sp_blockdev.Disk.reset_stats disk;
      ignore (F.read f ~pos:0 ~len:4096);
      Alcotest.(check bool) "cold read reaches the device" true
        ((Sp_blockdev.Disk.stats disk).Sp_blockdev.Disk.reads > 0))

let test_mapped_sharing_with_file_io () =
  (* A client mapping the coherency file and the layer's own read/write
     path share the node VMM's page cache (cache unification). *)
  Util.in_world (fun () ->
      let vmm, _disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "shared") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "via file api"));
      let m = Sp_vm.Vmm.map vmm f.F.f_mem in
      Util.check_str "mapping sees file writes" "via file api"
        (Sp_vm.Vmm.read m ~pos:0 ~len:12);
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "VIA");
      Util.check_str "file api sees mapped writes" "VIA file api"
        (F.read f ~pos:0 ~len:12))

let test_mrsw_two_cache_managers () =
  (* Two distinct VMMs (as on two nodes) cache one file; the protocol must
     revoke the writer before serving the reader and vice versa. *)
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "m") in
      ignore (F.write f ~pos:0 (Util.pattern_bytes ps));
      S.sync sfs;
      let vmm_a = Sp_vm.Vmm.create ~node:"a" "vmm_a" in
      let vmm_b = Sp_vm.Vmm.create ~node:"b" "vmm_b" in
      let ma = Sp_vm.Vmm.map vmm_a f.F.f_mem in
      let mb = Sp_vm.Vmm.map vmm_b f.F.f_mem in
      (* A writes. *)
      Sp_vm.Vmm.write ma ~pos:0 (Util.bytes_of_string "from A");
      Alcotest.(check bool) "invariant after A writes" true (CL.invariant_holds sfs);
      (* B reads: must see A's write (deny_writes + write-down + page_in). *)
      Util.check_str "B sees A's write without any sync" "from A"
        (Sp_vm.Vmm.read mb ~pos:0 ~len:6);
      Alcotest.(check bool) "invariant after B reads" true (CL.invariant_holds sfs);
      (* B writes; A reads back. *)
      Sp_vm.Vmm.write mb ~pos:0 (Util.bytes_of_string "from B");
      Util.check_str "A sees B's write" "from B" (Sp_vm.Vmm.read ma ~pos:0 ~len:6);
      Alcotest.(check bool) "invariant at the end" true (CL.invariant_holds sfs))

let test_writer_revoked_on_second_writer () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "w") in
      ignore (F.write f ~pos:0 (Util.pattern_bytes ps));
      let vmm_a = Sp_vm.Vmm.create ~node:"a" "vmm_a" in
      let vmm_b = Sp_vm.Vmm.create ~node:"b" "vmm_b" in
      let ma = Sp_vm.Vmm.map vmm_a f.F.f_mem in
      let mb = Sp_vm.Vmm.map vmm_b f.F.f_mem in
      Sp_vm.Vmm.write ma ~pos:0 (Util.bytes_of_string "AAAA");
      Sp_vm.Vmm.write mb ~pos:4 (Util.bytes_of_string "BBBB");
      Alcotest.(check bool) "invariant" true (CL.invariant_holds sfs);
      (* Both updates must survive (flush_back wrote A's copy down before
         B paged the block in read-write). *)
      Util.check_str "both writers' updates merged" "AAAABBBB"
        (Sp_vm.Vmm.read mb ~pos:0 ~len:8);
      (* A refaults and sees the merge too. *)
      Util.check_str "A sees merge" "AAAABBBB" (Sp_vm.Vmm.read ma ~pos:0 ~len:8))

let test_file_io_coherent_with_remote_mapping () =
  (* Local file read/write (through the layer's own mapping) versus a
     foreign VMM mapping: the §4.5 claim that all access paths stay
     coherent. *)
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "x") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "local v1"));
      let vmm_r = Sp_vm.Vmm.create ~node:"remote" "vmm_r" in
      let mr = Sp_vm.Vmm.map vmm_r f.F.f_mem in
      Util.check_str "remote sees local write" "local v1"
        (Sp_vm.Vmm.read mr ~pos:0 ~len:8);
      Sp_vm.Vmm.write mr ~pos:6 (Util.bytes_of_string "v2");
      Util.check_str "local sees remote write" "local v2" (F.read f ~pos:0 ~len:8);
      Alcotest.(check bool) "invariant" true (CL.invariant_holds sfs))

let test_attr_caching_and_invalidation () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "attrs") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "0123"));
      ignore (F.stat f);
      let before = Sp_sim.Metrics.snapshot () in
      ignore (F.stat f);
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "stat served from attr cache" 0
        d.Sp_sim.Metrics.attr_fetches;
      (* Length growth via write is reflected without refetch. *)
      ignore (F.write f ~pos:4 (Util.bytes_of_string "4567"));
      Alcotest.(check int) "length tracked in cache" 8 (F.stat f).Sp_vm.Attr.len)

let test_attr_sync_reaches_disk_layer () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      let base = Sp_coherency.Spring_sfs.disk_layer sfs in
      let f = S.create sfs (Util.name "al") in
      ignore (F.write f ~pos:0 (Util.pattern_bytes 100));
      (* Before sync the disk layer may hold a stale length... *)
      S.sync sfs;
      (* ...but after sync both layers agree. *)
      let lower = S.open_file base (Util.name "al") in
      Alcotest.(check int) "lower length after sync" 100
        (F.stat lower).Sp_vm.Attr.len)

let test_truncate_through_stack () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      let f = S.create sfs (Util.name "t") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "0123456789"));
      F.truncate f 4;
      Alcotest.(check int) "upper length" 4 (F.stat f).Sp_vm.Attr.len;
      Util.check_str "clipped" "0123" (F.read f ~pos:0 ~len:10);
      (* Regrow: tail reads zeros (no stale cached data). *)
      ignore (F.write f ~pos:6 (Util.bytes_of_string "XY"));
      Util.check_str "zeros in reopened gap" "0123\000\000XY" (F.read f ~pos:0 ~len:8))

let test_remove_through_stack () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      ignore (S.create sfs (Util.name "dead"));
      S.remove sfs (Util.name "dead");
      Alcotest.check_raises "gone" (Sp_core.Fserr.No_such_file "dead") (fun () ->
          ignore (S.open_file sfs (Util.name "dead")));
      (* Re-creating under the same name works and is a fresh file. *)
      let f = S.create sfs (Util.name "dead") in
      Alcotest.(check int) "fresh file empty" 0 (F.stat f).Sp_vm.Attr.len)

let test_dirs_through_stack () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      S.mkdir sfs (Util.name "d");
      let f = S.create sfs (Util.name "d/inner") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "deep"));
      let again = S.open_file sfs (Util.name "d/inner") in
      Alcotest.(check bool) "same wrapper through dir" true (f == again);
      Util.check_str "io" "deep" (F.read again ~pos:0 ~len:4);
      Alcotest.(check (list string)) "listing" [ "inner" ]
        (S.listdir sfs (Util.name "d")))

let test_fig10_structure () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs () in
      let layers = Sp_core.Stack_builder.layers sfs in
      Alcotest.(check (list string)) "coherency over disk layer"
        [ "coherency"; "sfs_disk" ]
        (List.map (fun l -> l.S.sfs_type) layers))

let test_same_domain_no_crossings_between_layers () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs ~same_domain:true () in
      let layers = Sp_core.Stack_builder.layers sfs in
      match layers with
      | [ top; bottom ] ->
          Alcotest.(check bool) "layers co-domained" true
            (Sp_obj.Sdomain.equal top.S.sfs_domain bottom.S.sfs_domain)
      | _ -> Alcotest.fail "expected two layers")

let test_coherent_stack_of_noncoherent_layers () =
  (* §6.3: stack a SECOND coherency layer on a full SFS; every exported
     file stays coherent even though the middle is just another layer. *)
  Util.in_world (fun () ->
      let vmm, _disk, sfs = make_sfs () in
      let top = CL.make ~vmm ~name:"coh2" () in
      S.stack_on top sfs;
      let f = S.create top (Util.name "n") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "nested stack"));
      Util.check_str "io through double coherency" "nested stack"
        (F.read f ~pos:0 ~len:12);
      (* The same file via the middle layer stays coherent: the middle's
         pager engages the top layer as a cache manager. *)
      let mid_file = S.open_file sfs (Util.name "n") in
      Util.check_str "middle view" "nested stack" (F.read mid_file ~pos:0 ~len:12);
      Alcotest.(check bool) "invariants" true
        (CL.invariant_holds top && CL.invariant_holds sfs))

let test_stack_on_twice_rejected () =
  Util.in_world (fun () ->
      let vmm, _disk, sfs = make_sfs () in
      let c = CL.make ~vmm ~name:"c2" () in
      S.stack_on c sfs;
      try
        S.stack_on c sfs;
        Alcotest.fail "second stack_on should fail"
      with S.Stack_error _ -> ())

let test_mono_behaves_like_split () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let disk = Util.fresh_disk () in
      let sfs = Sp_coherency.Spring_sfs.make_mono ~vmm ~name:"mono" disk in
      Alcotest.(check string) "type" "sfs_mono" sfs.S.sfs_type;
      let f = S.create sfs (Util.name "m") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "mono data"));
      Util.check_str "io" "mono data" (F.read f ~pos:0 ~len:9);
      S.sync sfs;
      (* same device readable via a split mount afterwards *)
      let vmm2 = Sp_vm.Vmm.create ~node:"local" "vmm1" in
      let sfs2 =
        Sp_coherency.Spring_sfs.make_split ~vmm:vmm2 ~name:"verify"
          ~same_domain:false disk
      in
      Util.check_str "readable via split mount" "mono data"
        (F.read (S.open_file sfs2 (Util.name "m")) ~pos:0 ~len:9))

let test_block_state_invariant_property =
  (* Random interleaving of reads/writes from three cache managers never
     violates the MRSW invariant and always reads back the latest write
     per byte region. *)
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 40) (triple (int_range 0 2) (int_range 0 2) bool))
  in
  Util.qcheck_case ~count:25 "random MRSW schedule keeps invariant + data" gen
    (fun ops ->
      Util.in_world (fun () ->
          let _vmm, _disk, sfs = make_sfs () in
          let f = S.create sfs (Util.name "prop") in
          ignore (F.write f ~pos:0 (Bytes.make (2 * ps) 'i'));
          let vmms =
            Array.init 3 (fun i ->
                Sp_vm.Vmm.create ~node:(Printf.sprintf "n%d" i)
                  (Printf.sprintf "v%d" i))
          in
          let maps = Array.map (fun vmm -> Sp_vm.Vmm.map vmm f.F.f_mem) vmms in
          let model = Bytes.make (2 * ps) 'i' in
          let ok = ref true in
          List.iteri
            (fun i (who, block, is_write) ->
              let m = maps.(who) in
              let pos = (block mod 2 * ps) + (i mod 100) in
              if is_write then begin
                let data = Util.pattern_bytes ~seed:(i + 31) 8 in
                Sp_vm.Vmm.write m ~pos data;
                Bytes.blit data 0 model pos 8
              end
              else begin
                let got = Sp_vm.Vmm.read m ~pos ~len:8 in
                if not (Bytes.equal got (Bytes.sub model pos 8)) then ok := false
              end;
              if not (CL.invariant_holds sfs) then ok := false)
            ops;
          !ok))

let suite =
  [
    Alcotest.test_case "basic io through stack" `Quick test_basic_io;
    Alcotest.test_case "reopen returns same object" `Quick test_reopen_same_object;
    Alcotest.test_case "data persists via sync" `Quick test_data_persisted_on_sync;
    Alcotest.test_case "cached ops make no lower calls" `Quick
      test_cached_read_no_lower_calls;
    Alcotest.test_case "uncached read hits disk" `Quick test_uncached_read_hits_disk;
    Alcotest.test_case "mapping and file io share cache" `Quick
      test_mapped_sharing_with_file_io;
    Alcotest.test_case "MRSW: two cache managers" `Quick test_mrsw_two_cache_managers;
    Alcotest.test_case "MRSW: writer revocation merges" `Quick
      test_writer_revoked_on_second_writer;
    Alcotest.test_case "file io coherent with foreign mapping" `Quick
      test_file_io_coherent_with_remote_mapping;
    Alcotest.test_case "attr caching + tracking" `Quick
      test_attr_caching_and_invalidation;
    Alcotest.test_case "attr sync reaches disk layer" `Quick
      test_attr_sync_reaches_disk_layer;
    Alcotest.test_case "truncate through stack" `Quick test_truncate_through_stack;
    Alcotest.test_case "remove through stack" `Quick test_remove_through_stack;
    Alcotest.test_case "directories through stack" `Quick test_dirs_through_stack;
    Alcotest.test_case "fig10 structure" `Quick test_fig10_structure;
    Alcotest.test_case "same-domain colocation" `Quick
      test_same_domain_no_crossings_between_layers;
    Alcotest.test_case "6.3: coherent stack of layers" `Quick
      test_coherent_stack_of_noncoherent_layers;
    Alcotest.test_case "stack_on twice rejected" `Quick test_stack_on_twice_rejected;
    Alcotest.test_case "mono SFS" `Quick test_mono_behaves_like_split;
    test_block_state_invariant_property;
  ]
