let test_domain_identity () =
  let a = Sp_obj.Sdomain.create "a" in
  let b = Sp_obj.Sdomain.create "a" in
  Alcotest.(check bool) "self equal" true (Sp_obj.Sdomain.equal a a);
  Alcotest.(check bool) "same name, distinct identity" false (Sp_obj.Sdomain.equal a b);
  Alcotest.(check string) "node defaults to local" "local" (Sp_obj.Sdomain.node a)

let test_door_local_vs_cross () =
  Util.in_world (fun () ->
      let server = Sp_obj.Sdomain.create "server" in
      let before = Sp_sim.Metrics.snapshot () in
      Sp_obj.Door.call server (fun () -> ());
      let mid = Sp_sim.Metrics.snapshot () in
      Alcotest.(check int) "first call crosses" 1
        (Sp_sim.Metrics.diff ~before ~after:mid).Sp_sim.Metrics.cross_domain_calls;
      (* A nested call to the same domain is a local procedure call. *)
      Sp_obj.Door.call server (fun () -> Sp_obj.Door.call server (fun () -> ()));
      let after = Sp_sim.Metrics.snapshot () in
      let d = Sp_sim.Metrics.diff ~before:mid ~after in
      Alcotest.(check int) "one crossing" 1 d.Sp_sim.Metrics.cross_domain_calls;
      Alcotest.(check int) "one local call" 1 d.Sp_sim.Metrics.local_calls)

let test_door_restores_domain () =
  Util.in_world (fun () ->
      let server = Sp_obj.Sdomain.create "server" in
      let caller_before = Sp_obj.Door.current () in
      (try Sp_obj.Door.call server (fun () -> failwith "boom") with Failure _ -> ());
      Alcotest.(check bool) "current restored after exception" true
        (Sp_obj.Sdomain.equal caller_before (Sp_obj.Door.current ())))

let test_door_costs_charged () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let server = Sp_obj.Sdomain.create "server" in
      let model = Sp_sim.Cost_model.current () in
      let t0 = Sp_sim.Simclock.now () in
      Sp_obj.Door.call server (fun () -> ());
      Alcotest.(check int) "cross-domain cost"
        model.Sp_sim.Cost_model.cross_domain_call_ns
        (Sp_sim.Simclock.now () - t0))

let test_door_from () =
  Util.in_world (fun () ->
      let app = Sp_obj.Sdomain.create "app" in
      Sp_obj.Door.from app (fun () ->
          Alcotest.(check bool) "current is app" true
            (Sp_obj.Sdomain.equal app (Sp_obj.Door.current ())));
      Alcotest.(check bool) "back to user" true
        (Sp_obj.Sdomain.equal Sp_obj.Door.user_domain (Sp_obj.Door.current ())))

type Sp_obj.Exten.t += Test_ext_a of int | Test_ext_b of string

let test_narrow () =
  let extens = [ Test_ext_b "hello"; Test_ext_a 7 ] in
  let as_a = function Test_ext_a n -> Some n | _ -> None in
  let as_b = function Test_ext_b s -> Some s | _ -> None in
  Alcotest.(check (option int)) "narrow to a" (Some 7) (Sp_obj.Exten.narrow extens as_a);
  Alcotest.(check (option string))
    "narrow to b" (Some "hello")
    (Sp_obj.Exten.narrow extens as_b);
  Alcotest.(check (option int)) "narrow fails on empty" None (Sp_obj.Exten.narrow [] as_a);
  Alcotest.(check bool) "has" true (Sp_obj.Exten.has extens as_b)

let suite =
  [
    Alcotest.test_case "domain identity" `Quick test_domain_identity;
    Alcotest.test_case "door local vs cross" `Quick test_door_local_vs_cross;
    Alcotest.test_case "door restores domain on exn" `Quick test_door_restores_domain;
    Alcotest.test_case "door charges cost model" `Quick test_door_costs_charged;
    Alcotest.test_case "door from" `Quick test_door_from;
    Alcotest.test_case "exten narrow" `Quick test_narrow;
  ]
