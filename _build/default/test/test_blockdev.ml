module D = Sp_blockdev.Disk

let test_read_write_roundtrip () =
  Util.in_world (fun () ->
      let disk = D.create ~blocks:8 () in
      let data = Util.pattern_bytes D.block_size in
      D.write disk 3 data;
      Util.check_bytes "roundtrip" data (D.read disk 3))

let test_short_write_zero_pads () =
  Util.in_world (fun () ->
      let disk = D.create ~blocks:4 () in
      D.write disk 0 (Util.bytes_of_string "abc");
      let back = D.read disk 0 in
      Util.check_str "payload" "abc" (Bytes.sub back 0 3);
      Alcotest.(check char) "padded" '\000' (Bytes.get back 3))

let test_bounds () =
  Util.in_world (fun () ->
      let disk = D.create ~blocks:4 () in
      Alcotest.check_raises "read oob"
        (Invalid_argument "Disk disk0: block 4 out of range") (fun () ->
          ignore (D.read disk 4));
      Alcotest.check_raises "negative"
        (Invalid_argument "Disk disk0: block -1 out of range") (fun () ->
          ignore (D.read disk (-1))))

let test_oversize_write_rejected () =
  Util.in_world (fun () ->
      let disk = D.create ~blocks:4 () in
      Alcotest.check_raises "too big"
        (Invalid_argument "Disk disk0: write larger than a block") (fun () ->
          D.write disk 0 (Bytes.create (D.block_size + 1))))

let test_latency_model () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let model = Sp_sim.Cost_model.paper_1993 in
      let disk = D.create ~blocks:64 () in
      (* Head starts at 0: first access to block 0 costs transfer only. *)
      let t0 = Sp_sim.Simclock.now () in
      ignore (D.read disk 0);
      Alcotest.(check int) "sequential from head position"
        model.Sp_sim.Cost_model.disk_per_block_ns
        (Sp_sim.Simclock.now () - t0);
      (* Adjacent block: no seek. *)
      let t1 = Sp_sim.Simclock.now () in
      ignore (D.read disk 1);
      Alcotest.(check int) "adjacent block skips seek"
        model.Sp_sim.Cost_model.disk_per_block_ns
        (Sp_sim.Simclock.now () - t1);
      (* Far block: seek + rotate + transfer. *)
      let t2 = Sp_sim.Simclock.now () in
      ignore (D.read disk 50);
      Alcotest.(check int) "random block seeks"
        (model.Sp_sim.Cost_model.disk_seek_ns
        + model.Sp_sim.Cost_model.disk_rotate_ns
        + model.Sp_sim.Cost_model.disk_per_block_ns)
        (Sp_sim.Simclock.now () - t2))

let test_stats () =
  Util.in_world (fun () ->
      let disk = D.create ~blocks:16 () in
      ignore (D.read disk 0);
      ignore (D.read disk 9);
      D.write disk 2 (Bytes.create 1);
      let s = D.stats disk in
      Alcotest.(check int) "reads" 2 s.D.reads;
      Alcotest.(check int) "writes" 1 s.D.writes;
      Alcotest.(check bool) "seeks counted" true (s.D.seeks >= 1);
      D.reset_stats disk;
      Alcotest.(check int) "reset" 0 (D.stats disk).D.reads)

let test_metrics_integration () =
  Util.in_world (fun () ->
      let disk = D.create ~blocks:4 () in
      let before = Sp_sim.Metrics.snapshot () in
      ignore (D.read disk 0);
      D.write disk 1 (Bytes.create 4);
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "global disk reads" 1 d.Sp_sim.Metrics.disk_reads;
      Alcotest.(check int) "global disk writes" 1 d.Sp_sim.Metrics.disk_writes)

let prop_blocks_independent =
  let gen = QCheck2.Gen.(list_size (int_range 1 16) (int_range 0 15)) in
  Util.qcheck_case ~count:50 "writes to one block never leak to another" gen
    (fun targets ->
      Util.in_world (fun () ->
          let disk = D.create ~blocks:16 () in
          let model = Array.make 16 (Bytes.make D.block_size '\000') in
          List.iteri
            (fun i b ->
              let data = Util.pattern_bytes ~seed:(i + 7) D.block_size in
              D.write disk b data;
              model.(b) <- data)
            targets;
          Array.to_list model
          |> List.mapi (fun i expected -> Bytes.equal (D.read disk i) expected)
          |> List.for_all Fun.id))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_read_write_roundtrip;
    Alcotest.test_case "short write zero pads" `Quick test_short_write_zero_pads;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "oversize write rejected" `Quick test_oversize_write_rejected;
    Alcotest.test_case "latency model" `Quick test_latency_model;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "metrics integration" `Quick test_metrics_integration;
    prop_blocks_independent;
  ]
