module V = Sp_vm.Vm_types

let ps = V.page_size

let setup () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "test" in
  let ram = Sp_vm.Ram_pager.create ~label:"obj" () in
  (vmm, ram)

let test_page_geometry () =
  Alcotest.(check int) "index" 0 (V.page_index 4095);
  Alcotest.(check int) "index 2" 1 (V.page_index 4096);
  Alcotest.(check int) "base" 4096 (V.page_base 5000);
  Alcotest.(check (list int)) "covering" [ 0; 1 ]
    (V.pages_covering ~offset:4000 ~size:200);
  Alcotest.(check (list int)) "covering exact" [ 1 ]
    (V.pages_covering ~offset:4096 ~size:4096);
  Alcotest.(check (list int)) "empty" [] (V.pages_covering ~offset:0 ~size:0)

let test_map_read_write () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.bytes_of_string "hello world");
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      Util.check_str "reads backing store" "hello"
        (Sp_vm.Vmm.read m ~pos:0 ~len:5);
      Sp_vm.Vmm.write m ~pos:6 (Util.bytes_of_string "spring");
      Util.check_str "read back through cache" "hello spring"
        (Sp_vm.Vmm.read m ~pos:0 ~len:12);
      (* Not yet pushed to the pager. *)
      Util.check_str "store unchanged before msync" "world"
        (Sp_vm.Ram_pager.peek ram ~pos:6 ~len:5);
      Sp_vm.Vmm.msync m;
      Util.check_str "store updated after msync" "spring"
        (Sp_vm.Ram_pager.peek ram ~pos:6 ~len:6))

let test_faults_and_hits () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (3 * ps));
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      let before = Sp_sim.Metrics.snapshot () in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:(2 * ps));
      let mid = Sp_sim.Metrics.snapshot () in
      let d1 = Sp_sim.Metrics.diff ~before ~after:mid in
      Alcotest.(check int) "two faults for two pages" 2 d1.Sp_sim.Metrics.page_faults;
      Alcotest.(check int) "two page-ins" 2 d1.Sp_sim.Metrics.page_ins;
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:(2 * ps));
      let d2 = Sp_sim.Metrics.diff ~before:mid ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "no faults on hit" 0 d2.Sp_sim.Metrics.page_faults;
      Alcotest.(check int) "no page-ins on hit" 0 d2.Sp_sim.Metrics.page_ins)

let test_write_upgrades_mode () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes ps);
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:16);
      (* page now cached read-only *)
      let before = Sp_sim.Metrics.snapshot () in
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "X");
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "upgrade faults once" 1 d.Sp_sim.Metrics.page_faults;
      (* second write hits *)
      let before = Sp_sim.Metrics.snapshot () in
      Sp_vm.Vmm.write m ~pos:1 (Util.bytes_of_string "Y");
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "no fault once writable" 0 d.Sp_sim.Metrics.page_faults)

let test_cache_unification () =
  (* Two equivalent memory objects must share the same cached pages. *)
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      let m1 = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      let m2 = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      Sp_vm.Vmm.write m1 ~pos:0 (Util.bytes_of_string "shared!");
      Util.check_str "visible through second mapping without sync" "shared!"
        (Sp_vm.Vmm.read m2 ~pos:0 ~len:7);
      Alcotest.(check int) "one VMM entry" 1 (Sp_vm.Vmm.entry_count vmm);
      Alcotest.(check int) "one channel at the pager" 1
        (List.length (Sp_vm.Ram_pager.channels ram)))

let test_two_vmms_two_channels () =
  (* Figure 2: one memory object cached at two VMMs -> one channel per VMM. *)
  Util.in_world (fun () ->
      let vmm1 = Sp_vm.Vmm.create ~node:"n1" "vmm1" in
      let vmm2 = Sp_vm.Vmm.create ~node:"n2" "vmm2" in
      let ram = Sp_vm.Ram_pager.create ~label:"obj" () in
      let _m1 = Sp_vm.Vmm.map vmm1 (Sp_vm.Ram_pager.memory_object ram) in
      let _m2 = Sp_vm.Vmm.map vmm2 (Sp_vm.Ram_pager.memory_object ram) in
      Alcotest.(check int) "two channels" 2
        (List.length (Sp_vm.Ram_pager.channels ram)))

let with_channel f =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (2 * ps));
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:(2 * ps));
      let ch =
        match Sp_vm.Ram_pager.channels ram with
        | [ ch ] -> ch
        | _ -> Alcotest.fail "expected one channel"
      in
      f vmm ram m ch)

let test_deny_writes () =
  with_channel (fun _vmm _ram m ch ->
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "dirty data");
      let extents =
        V.deny_writes ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:(2 * ps)
      in
      (match extents with
      | [ e ] ->
          Alcotest.(check int) "extent offset" 0 e.V.ext_offset;
          Util.check_str "extent has the dirty bytes" "dirty data"
            (Bytes.sub e.V.ext_data 0 10)
      | _ -> Alcotest.fail "expected exactly one dirty extent");
      (* Page is still readable without fault (retained read-only)... *)
      let before = Sp_sim.Metrics.snapshot () in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:4);
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "read hits after deny" 0 d.Sp_sim.Metrics.page_faults;
      (* ...but writing faults again (mode downgraded). *)
      let before = Sp_sim.Metrics.snapshot () in
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "x");
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "write faults after deny" 1 d.Sp_sim.Metrics.page_faults)

let test_flush_back () =
  with_channel (fun _vmm _ram m ch ->
      Sp_vm.Vmm.write m ~pos:ps (Util.bytes_of_string "page two");
      let extents =
        V.flush_back ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:(2 * ps)
      in
      Alcotest.(check int) "one dirty extent" 1 (List.length extents);
      Alcotest.(check int) "cache emptied" 0 (Sp_vm.Vmm.cached_pages m);
      (* Next read faults. *)
      let before = Sp_sim.Metrics.snapshot () in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:4);
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "fault after flush" 1 d.Sp_sim.Metrics.page_faults)

let test_write_back_retains () =
  with_channel (fun _vmm _ram m ch ->
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "keep me");
      let extents =
        V.write_back ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:(2 * ps)
      in
      Alcotest.(check int) "dirty data returned" 1 (List.length extents);
      (* Still writable without a fault. *)
      let before = Sp_sim.Metrics.snapshot () in
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "again");
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "no fault" 0 d.Sp_sim.Metrics.page_faults;
      (* And a second write_back sees fresh dirty data. *)
      let extents =
        V.write_back ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:(2 * ps)
      in
      Alcotest.(check int) "second round dirty" 1 (List.length extents))

let test_delete_range_discards () =
  with_channel (fun _vmm ram m ch ->
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "DOOMED");
      V.delete_range ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:ps;
      (* Dirty data was discarded, not written back. *)
      let store = Sp_vm.Ram_pager.peek ram ~pos:0 ~len:6 in
      Alcotest.(check bool) "store does not contain DOOMED" false
        (Bytes.to_string store = "DOOMED"))

let test_populate_and_zero_fill () =
  with_channel (fun _vmm _ram m ch ->
      V.populate ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~access:V.Read_only
        (Util.bytes_of_string "populated");
      let before = Sp_sim.Metrics.snapshot () in
      Util.check_str "populated data readable" "populated"
        (Sp_vm.Vmm.read m ~pos:0 ~len:9);
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "no fault after populate" 0 d.Sp_sim.Metrics.page_faults;
      V.zero_fill ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:ps;
      Util.check_str "zero filled" "\000\000\000" (Sp_vm.Vmm.read m ~pos:0 ~len:3))

let test_unmap_pushes_dirty () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "persist");
      Sp_vm.Vmm.unmap m;
      Util.check_str "dirty data reached pager" "persist"
        (Sp_vm.Ram_pager.peek ram ~pos:0 ~len:7);
      Alcotest.check_raises "use after unmap"
        (Failure "Vmm: access through unmapped mapping") (fun () ->
          ignore (Sp_vm.Vmm.read m ~pos:0 ~len:1)))

let test_drop_caches () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "save me");
      Sp_vm.Vmm.drop_caches vmm;
      Util.check_str "dirty pushed before drop" "save me"
        (Sp_vm.Ram_pager.peek ram ~pos:0 ~len:7);
      Alcotest.(check int) "pages dropped" 0 (Sp_vm.Vmm.cached_pages m);
      (* Mapping still valid; next access faults data back in. *)
      Util.check_str "refault works" "save me" (Sp_vm.Vmm.read m ~pos:0 ~len:7))

let test_set_length () =
  Util.in_world (fun () ->
      let _vmm, ram = setup () in
      let mem = Sp_vm.Ram_pager.memory_object ram in
      V.set_length mem 100;
      Alcotest.(check int) "grown" 100 (V.get_length mem);
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.bytes_of_string "0123456789");
      V.set_length mem 4;
      Alcotest.(check int) "shrunk" 4 (V.get_length mem);
      V.set_length mem 10;
      Util.check_str "tail zeroed by shrink" "0123\000\000"
        (Sp_vm.Ram_pager.peek ram ~pos:0 ~len:6))

(* qcheck property: any sequence of aligned writes through the mapping,
   followed by msync, leaves the backing store equal to a model byte
   array. *)
let prop_writes_match_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (pair (int_range 0 (4 * ps)) (int_range 1 64)))
  in
  Util.qcheck_case ~count:50 "vmm writes match byte-array model" gen
    (fun writes ->
      Util.in_world (fun () ->
          let vmm, ram = setup () in
          let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
          let model = Bytes.make ((4 * ps) + 64) '\000' in
          List.iteri
            (fun i (pos, len) ->
              let data = Util.pattern_bytes ~seed:(i + 1) len in
              Sp_vm.Vmm.write m ~pos data;
              Bytes.blit data 0 model pos len)
            writes;
          Sp_vm.Vmm.msync m;
          let stored =
            Sp_vm.Ram_pager.peek ram ~pos:0 ~len:(Bytes.length model)
          in
          (* Compare only written regions: unwritten pager bytes are zero in
             both. *)
          Bytes.equal stored model))

let test_readahead () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (16 * ps));
      Sp_vm.Vmm.set_readahead vmm ~pages:7;
      Alcotest.(check int) "window" 7 (Sp_vm.Vmm.readahead vmm);
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      let before = Sp_sim.Metrics.snapshot () in
      (* Sequential read of 16 pages: first fault is not part of a run;
         the second triggers an 8-page batch; etc. *)
      for i = 0 to 15 do
        ignore (Sp_vm.Vmm.read m ~pos:(i * ps) ~len:ps)
      done;
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check bool)
        (Printf.sprintf "page-ins collapse (%d <= 4)" d.Sp_sim.Metrics.page_ins)
        true
        (d.Sp_sim.Metrics.page_ins <= 4);
      (* Data is still correct. *)
      Util.check_bytes "sequential content intact"
        (Util.pattern_bytes (16 * ps))
        (Sp_vm.Vmm.read m ~pos:0 ~len:(16 * ps)))

let test_readahead_random_access_not_triggered () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (16 * ps));
      Sp_vm.Vmm.set_readahead vmm ~pages:7;
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      let before = Sp_sim.Metrics.snapshot () in
      (* Stride-2 access never continues a run. *)
      for i = 0 to 7 do
        ignore (Sp_vm.Vmm.read m ~pos:(2 * i * ps) ~len:16)
      done;
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "one page-in per random fault" 8 d.Sp_sim.Metrics.page_ins)

let test_readahead_writes_stay_coherent () =
  (* Read-ahead pages are read-only; writing one must fault RW through the
     pager like any other page. *)
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (4 * ps));
      Sp_vm.Vmm.set_readahead vmm ~pages:3;
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:ps);
      ignore (Sp_vm.Vmm.read m ~pos:ps ~len:ps);
      (* pages 1..3 now cached read-only via read-ahead *)
      let before = Sp_sim.Metrics.snapshot () in
      Sp_vm.Vmm.write m ~pos:(2 * ps) (Util.bytes_of_string "RW");
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "upgrade faulted" 1 d.Sp_sim.Metrics.page_faults;
      Sp_vm.Vmm.msync m;
      Util.check_str "write landed" "RW" (Sp_vm.Ram_pager.peek ram ~pos:(2 * ps) ~len:2))

let test_capacity_bound () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (16 * ps));
      Sp_vm.Vmm.set_capacity vmm ~pages:(Some 4);
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      for i = 0 to 15 do
        ignore (Sp_vm.Vmm.read m ~pos:(i * ps) ~len:16)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "cache bounded (%d <= 4)" (Sp_vm.Vmm.total_cached_pages vmm))
        true
        (Sp_vm.Vmm.total_cached_pages vmm <= 4);
      Alcotest.(check bool) "evictions happened" true (Sp_vm.Vmm.evictions vmm >= 12);
      (* Data still correct after refault. *)
      Util.check_bytes "data intact under pressure"
        (Bytes.sub (Util.pattern_bytes (16 * ps)) 0 ps)
        (Sp_vm.Vmm.read m ~pos:0 ~len:ps))

let test_eviction_preserves_dirty () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Vmm.set_capacity vmm ~pages:(Some 2);
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      (* Dirty several pages; eviction must push them to the pager, so no
         update is lost even without msync. *)
      for i = 0 to 7 do
        Sp_vm.Vmm.write m ~pos:(i * ps) (Util.pattern_bytes ~seed:(i + 1) 64)
      done;
      Sp_vm.Vmm.msync m;
      for i = 0 to 7 do
        Util.check_bytes
          (Printf.sprintf "page %d survived eviction" i)
          (Util.pattern_bytes ~seed:(i + 1) 64)
          (Sp_vm.Ram_pager.peek ram ~pos:(i * ps) ~len:64)
      done)

let test_lru_order () =
  Util.in_world (fun () ->
      let vmm, ram = setup () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (8 * ps));
      Sp_vm.Vmm.set_capacity vmm ~pages:(Some 3);
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:4);        (* page 0 *)
      ignore (Sp_vm.Vmm.read m ~pos:ps ~len:4);       (* page 1 *)
      ignore (Sp_vm.Vmm.read m ~pos:(2 * ps) ~len:4); (* page 2 *)
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:4);        (* refresh page 0 *)
      let before = Sp_sim.Metrics.snapshot () in
      ignore (Sp_vm.Vmm.read m ~pos:(3 * ps) ~len:4); (* evicts page 1 (LRU) *)
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:4);        (* page 0 still cached *)
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "only the new page faulted" 1 d.Sp_sim.Metrics.page_faults)

let test_capacity_validation () =
  Util.in_world (fun () ->
      let vmm, _ = setup () in
      Alcotest.check_raises "zero rejected" (Invalid_argument "Vmm.set_capacity")
        (fun () -> Sp_vm.Vmm.set_capacity vmm ~pages:(Some 0)))

let suite =
  [
    Alcotest.test_case "page geometry" `Quick test_page_geometry;
    Alcotest.test_case "map/read/write/msync" `Quick test_map_read_write;
    Alcotest.test_case "faults then hits" `Quick test_faults_and_hits;
    Alcotest.test_case "write upgrades mode" `Quick test_write_upgrades_mode;
    Alcotest.test_case "equivalent objects share cache" `Quick test_cache_unification;
    Alcotest.test_case "fig2: two VMMs, two channels" `Quick test_two_vmms_two_channels;
    Alcotest.test_case "deny_writes" `Quick test_deny_writes;
    Alcotest.test_case "flush_back" `Quick test_flush_back;
    Alcotest.test_case "write_back retains" `Quick test_write_back_retains;
    Alcotest.test_case "delete_range discards" `Quick test_delete_range_discards;
    Alcotest.test_case "populate and zero_fill" `Quick test_populate_and_zero_fill;
    Alcotest.test_case "unmap pushes dirty" `Quick test_unmap_pushes_dirty;
    Alcotest.test_case "drop_caches" `Quick test_drop_caches;
    Alcotest.test_case "set_length" `Quick test_set_length;
    Alcotest.test_case "readahead batches sequential faults" `Quick test_readahead;
    Alcotest.test_case "readahead skips random access" `Quick
      test_readahead_random_access_not_triggered;
    Alcotest.test_case "readahead pages upgrade correctly" `Quick
      test_readahead_writes_stay_coherent;
    Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
    Alcotest.test_case "eviction preserves dirty data" `Quick
      test_eviction_preserves_dirty;
    Alcotest.test_case "lru order" `Quick test_lru_order;
    Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
    prop_writes_match_model;
  ]
