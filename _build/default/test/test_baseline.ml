module U = Sp_baseline.Unixfs

let make () = U.mkfs_and_mount (Sp_blockdev.Disk.create ~blocks:2048 ())

let test_create_write_read () =
  Util.in_world (fun () ->
      let fs = make () in
      let fd = U.creat fs "hello" in
      Alcotest.(check int) "written" 5 (U.write fs fd ~pos:0 (Util.bytes_of_string "hello"));
      Util.check_str "read" "hello" (U.read fs fd ~pos:0 ~len:10);
      Alcotest.(check int) "fstat len" 5 (U.fstat fs fd).Sp_vm.Attr.len)

let test_open_existing () =
  Util.in_world (fun () ->
      let fs = make () in
      let fd = U.creat fs "f" in
      ignore (U.write fs fd ~pos:0 (Util.bytes_of_string "x"));
      let fd2 = U.openf fs "f" in
      Util.check_str "reopen" "x" (U.read fs fd2 ~pos:0 ~len:1);
      Alcotest.check_raises "missing" (Sp_core.Fserr.No_such_file "nope") (fun () ->
          ignore (U.openf fs "nope")))

let test_dirs_and_unlink () =
  Util.in_world (fun () ->
      let fs = make () in
      U.mkdir fs "d";
      let fd = U.creat fs "d/inner" in
      ignore (U.write fs fd ~pos:0 (Util.bytes_of_string "deep"));
      Util.check_str "nested" "deep" (U.read fs (U.openf fs "d/inner") ~pos:0 ~len:4);
      U.unlink fs "d/inner";
      Alcotest.check_raises "unlinked" (Sp_core.Fserr.No_such_file "d/inner")
        (fun () -> ignore (U.openf fs "d/inner")))

let test_buffer_cache () =
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
      let fs = U.mkfs_and_mount disk in
      let fd = U.creat fs "cached" in
      ignore (U.write fs fd ~pos:0 (Util.pattern_bytes 4096));
      ignore (U.read fs fd ~pos:0 ~len:4096);
      Sp_blockdev.Disk.reset_stats disk;
      for _ = 1 to 10 do
        ignore (U.read fs fd ~pos:0 ~len:4096);
        ignore (U.fstat fs fd);
        ignore (U.openf fs "cached")
      done;
      let s = Sp_blockdev.Disk.stats disk in
      Alcotest.(check int) "warm ops need no disk reads" 0 s.Sp_blockdev.Disk.reads;
      Alcotest.(check int) "write-back: no disk writes yet" 0 s.Sp_blockdev.Disk.writes)

let test_persistence () =
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
      let fs = U.mkfs_and_mount disk in
      let fd = U.creat fs "p" in
      ignore (U.write fs fd ~pos:0 (Util.bytes_of_string "durable"));
      U.sync fs;
      let fs2 = U.mount disk in
      Util.check_str "remount" "durable" (U.read fs2 (U.openf fs2 "p") ~pos:0 ~len:7))

let test_interop_with_disk_layer () =
  (* Same on-disk format: a volume written by the baseline is readable by
     the Spring disk layer, and vice versa. *)
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
      let fs = U.mkfs_and_mount disk in
      let fd = U.creat fs "cross" in
      ignore (U.write fs fd ~pos:0 (Util.bytes_of_string "one format"));
      U.sync fs;
      let spring = Sp_sfs.Disk_layer.mount ~name:"spring-view" disk in
      let f = Sp_core.Stackable.open_file spring (Util.name "cross") in
      Util.check_str "spring reads baseline volume" "one format"
        (Sp_core.File.read f ~pos:0 ~len:10))

let test_drop_caches () =
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
      let fs = U.mkfs_and_mount disk in
      let fd = U.creat fs "cold" in
      ignore (U.write fs fd ~pos:0 (Util.pattern_bytes 4096));
      U.drop_caches fs;
      Sp_blockdev.Disk.reset_stats disk;
      ignore (U.read fs (U.openf fs "cold") ~pos:0 ~len:4096);
      Alcotest.(check bool) "cold read hits disk" true
        ((Sp_blockdev.Disk.stats disk).Sp_blockdev.Disk.reads > 0))

let test_costs_are_syscall_scale () =
  (* With the paper model, a warm open must cost far less than a Spring
     cross-domain stack open — the structural premise of Table 3. *)
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let fs = make () in
      let fd = U.creat fs "timed" in
      ignore (U.write fs fd ~pos:0 (Util.pattern_bytes 4096));
      ignore (U.openf fs "timed");
      (* warm *)
      let t0 = Sp_sim.Simclock.now () in
      ignore (U.openf fs "timed");
      let open_ns = Sp_sim.Simclock.now () - t0 in
      Alcotest.(check bool) "open ~100-200us" true
        (open_ns > 50_000 && open_ns < 300_000);
      let t0 = Sp_sim.Simclock.now () in
      ignore (U.fstat fs fd);
      let stat_ns = Sp_sim.Simclock.now () - t0 in
      Alcotest.(check bool) "fstat tens of us" true (stat_ns < 60_000))

let suite =
  [
    Alcotest.test_case "create/write/read" `Quick test_create_write_read;
    Alcotest.test_case "open existing" `Quick test_open_existing;
    Alcotest.test_case "dirs and unlink" `Quick test_dirs_and_unlink;
    Alcotest.test_case "buffer cache" `Quick test_buffer_cache;
    Alcotest.test_case "persistence" `Quick test_persistence;
    Alcotest.test_case "interop with spring disk layer" `Quick
      test_interop_with_disk_layer;
    Alcotest.test_case "drop caches" `Quick test_drop_caches;
    Alcotest.test_case "syscall-scale costs" `Quick test_costs_are_syscall_scale;
  ]
