bench/main.mli:
