bench/table_header.ml: Format
