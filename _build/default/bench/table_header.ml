let print ppf =
  Format.fprintf ppf
    "springfs benchmark harness — reproduction of \"Extensible File Systems \
     in Spring\" (SOSP '93)@.\
     Simulated substrate: 40MHz-SPARCstation-class cost model \
     (see DESIGN.md, EXPERIMENTS.md).@.@."
