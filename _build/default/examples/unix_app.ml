(* A "UNIX application" running over a stacked volume: Figure 1's UNIX
   server, exercised as a tiny shell session (mkdir/cd/redirect/cp/ls)
   against a compression+coherency stack, unaware of any of it.

   Run with: dune exec examples/unix_app.exe *)

module U = Sp_unix.Unix_emul
module S = Sp_core.Stackable
module N = Sp_node.Node

let get what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ U.errno_to_string e)

(* cp(1), three syscalls at a time. *)
let cp p src dst =
  let input = get "open src" (U.openf p src [ U.O_RDONLY ]) in
  let output = get "open dst" (U.creat p dst) in
  let rec loop () =
    let chunk = get "read" (U.read p input 4096) in
    if Bytes.length chunk > 0 then begin
      ignore (get "write" (U.write p output chunk));
      loop ()
    end
  in
  loop ();
  ignore (U.close p input);
  ignore (U.close p output)

let () =
  let world = N.World.create () in
  let alpha = N.World.add_node world "alpha" in
  ignore (N.add_disk alpha ~name:"disk0" ~blocks:8192);
  Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");
  let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:"vol" in
  let root = N.build_stack alpha ~base:sfs [ ("compfs", "comp0") ] in

  (* The process sees a plain UNIX file system. *)
  let p = U.create_process ~root () in
  ignore (get "mkdir" (U.mkdir p "/home"));
  ignore (get "mkdir" (U.mkdir p "/home/kernel-hacker"));
  ignore (get "chdir" (U.chdir p "/home/kernel-hacker"));
  Printf.printf "$ pwd\n%s\n" (U.getcwd p);

  Printf.printf "$ cat > paper.txt\n";
  let fd = get "creat" (U.creat p "paper.txt") in
  let prose =
    String.concat "\n"
      (List.init 300 (fun i ->
           Printf.sprintf "%03d  file systems compose like functions" i))
  in
  ignore (get "write" (U.write p fd (Bytes.of_string prose)));
  ignore (get "fsync" (U.fsync p fd));
  ignore (U.close p fd);

  Printf.printf "$ cp paper.txt backup.txt\n";
  cp p "paper.txt" "backup.txt";

  Printf.printf "$ mv backup.txt archive.txt\n";
  ignore (get "rename" (U.rename p "backup.txt" "archive.txt"));

  Printf.printf "$ ls\n%s\n"
    (String.concat "  " (get "readdir" (U.readdir p ".")));

  let st = get "stat" (U.stat p "archive.txt") in
  Printf.printf "$ stat archive.txt -> %d bytes\n" st.Sp_vm.Attr.len;

  Printf.printf "$ head -c 42 archive.txt\n";
  let fd = get "open" (U.openf p "archive.txt" [ U.O_RDONLY ]) in
  Printf.printf "%s\n" (Bytes.to_string (get "read" (U.read p fd 42)));
  ignore (U.close p fd);

  (* Below the syscalls, the data is compressed; the app never noticed. *)
  S.sync root;
  Printf.printf "(below: logical %d bytes stored as %d on the volume)\n"
    (Sp_compfs.Compfs.logical_bytes root
       (Sp_naming.Sname.of_string "home/kernel-hacker/archive.txt"))
    (Sp_compfs.Compfs.container_bytes root
       (Sp_naming.Sname.of_string "home/kernel-hacker/archive.txt"))
