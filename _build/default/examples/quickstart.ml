(* Quickstart: boot a Spring node, mount the standard SFS (coherency layer
   stacked on the disk layer), do file I/O, then extend the volume with
   compression by stacking COMPFS — without touching SFS.

   Run with: dune exec examples/quickstart.exe *)

module F = Sp_core.File
module S = Sp_core.Stackable
module N = Sp_node.Node

let path = Sp_naming.Sname.of_string

let () =
  (* A node comes with a VMM, a name server and a /fs_creators registry. *)
  let world = N.World.create () in
  let alpha = N.World.add_node world "alpha" in
  ignore (N.add_disk alpha ~name:"disk0" ~blocks:4096);
  Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");

  (* Mount the Spring SFS and expose it at /fs/home. *)
  let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:"home" in
  Printf.printf "mounted %s (%s) at /fs/home\n" sfs.S.sfs_name sfs.S.sfs_type;

  (* Ordinary file system use. *)
  S.mkdir sfs (path "docs");
  let f = S.create sfs (path "docs/hello.txt") in
  let n = F.write f ~pos:0 (Bytes.of_string "Hello from the Spring stack!") in
  Printf.printf "wrote %d bytes; stat says %d bytes\n" n (F.stat f).Sp_vm.Attr.len;
  Printf.printf "read back: %s\n"
    (Bytes.to_string (F.read f ~pos:0 ~len:100));

  (* Names are resolved through ordinary naming contexts. *)
  Printf.printf "listing /docs: [%s]\n"
    (String.concat "; " (S.listdir sfs (path "docs")));

  (* Extend the volume with compression: look the creator up, create an
     instance, stack it, use it (paper 4.4). *)
  let compfs = S.instantiate (N.creators alpha) "compfs" ~name:"compfs0" in
  S.stack_on compfs sfs;
  let big = S.create compfs (path "docs/big.log") in
  let line = "all work and no play makes a dull layer\n" in
  let text = Bytes.of_string (String.concat "" (List.init 2000 (fun _ -> line))) in
  ignore (F.write big ~pos:0 text);
  S.sync compfs;
  Printf.printf "compressed file: logical %d bytes, on disk %d bytes (%.0f%% saved)\n"
    (Sp_compfs.Compfs.logical_bytes compfs (path "docs/big.log"))
    (Sp_compfs.Compfs.container_bytes compfs (path "docs/big.log"))
    (100.
    *. (1.
       -. float_of_int (Sp_compfs.Compfs.container_bytes compfs (path "docs/big.log"))
          /. float_of_int (Bytes.length text)));

  (* The SFS view of the same name shows the container, coherently. *)
  let container = S.open_file sfs (path "docs/big.log") in
  Printf.printf "underlying container (via SFS): %d bytes of compressed data\n"
    (F.stat container).Sp_vm.Attr.len;

  (* Everything persists. *)
  S.sync sfs;
  Printf.printf "done; simulated time elapsed: %s\n"
    (Format.asprintf "%a" Sp_sim.Simclock.pp_duration (Sp_sim.Simclock.now ()))
