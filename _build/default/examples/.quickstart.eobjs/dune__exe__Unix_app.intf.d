examples/unix_app.mli:
