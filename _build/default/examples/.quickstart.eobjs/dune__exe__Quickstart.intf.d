examples/quickstart.mli:
