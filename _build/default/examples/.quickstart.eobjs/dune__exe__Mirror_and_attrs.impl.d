examples/mirror_and_attrs.ml: Bytes List Printf Sp_attrfs Sp_core Sp_mirrorfs Sp_naming Sp_node Sp_sfs String
