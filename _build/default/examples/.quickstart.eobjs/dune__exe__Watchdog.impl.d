examples/watchdog.ml: Bytes Char List Printf Sp_core Sp_naming Sp_node Sp_obj Sp_sfs String
