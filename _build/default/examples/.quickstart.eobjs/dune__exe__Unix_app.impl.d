examples/unix_app.ml: Bytes List Printf Sp_compfs Sp_core Sp_naming Sp_node Sp_sfs Sp_unix Sp_vm String
