examples/quickstart.ml: Bytes Format List Printf Sp_compfs Sp_core Sp_naming Sp_node Sp_sfs Sp_sim Sp_vm String
