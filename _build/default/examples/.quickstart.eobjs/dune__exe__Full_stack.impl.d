examples/full_stack.ml: Bytes Format List Printf Sp_cfs Sp_core Sp_dfs Sp_naming Sp_node Sp_sfs Sp_sim Sp_vm String
