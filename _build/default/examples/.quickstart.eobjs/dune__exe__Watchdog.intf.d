examples/watchdog.mli:
