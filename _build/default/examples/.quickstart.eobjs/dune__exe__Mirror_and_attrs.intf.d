examples/mirror_and_attrs.mli:
