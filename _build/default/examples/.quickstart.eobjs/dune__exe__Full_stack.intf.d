examples/full_stack.mli:
