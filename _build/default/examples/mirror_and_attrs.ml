(* Figure 3's fs4: a mirroring layer over two volumes, with failure
   injection and repair; plus the extended-attribute layer reached by
   narrowing (the intro's "replication" and "extended file attributes").

   Run with: dune exec examples/mirror_and_attrs.exe *)

module F = Sp_core.File
module S = Sp_core.Stackable
module M = Sp_mirrorfs.Mirrorfs
module A = Sp_attrfs.Attrfs
module N = Sp_node.Node

let path = Sp_naming.Sname.of_string

let () =
  let world = N.World.create () in
  let alpha = N.World.add_node world "alpha" in
  List.iter
    (fun d ->
      ignore (N.add_disk alpha ~name:d ~blocks:2048);
      Sp_sfs.Disk_layer.mkfs (N.disk alpha d))
    [ "d1"; "d2" ];
  let fs1 = N.mount_sfs alpha ~disk_name:"d1" ~name:"fs1" in
  let fs2 = N.mount_sfs alpha ~disk_name:"d2" ~name:"fs2" in

  (* fs4 of Figure 3: stack_on called twice. *)
  let mirror = S.instantiate (N.creators alpha) "mirrorfs" ~name:"fs4" in
  S.stack_on mirror fs1;
  S.stack_on mirror fs2;
  Printf.printf "mirror stacked on [%s]\n"
    (String.concat "; " (List.map (fun l -> l.S.sfs_name) (mirror.S.sfs_unders ())));

  let f = S.create mirror (path "ledger") in
  ignore (F.write f ~pos:0 (Bytes.of_string "balance=100"));
  F.sync f;
  Printf.printf "replicas identical: %b\n" (M.verify mirror (path "ledger"));

  (* Simulate losing the secondary volume; service continues. *)
  M.set_degraded mirror (Some M.Secondary);
  ignore (F.write f ~pos:0 (Bytes.of_string "balance=250"));
  F.sync f;
  Printf.printf "after degraded write, replicas identical: %b\n"
    (M.verify mirror (path "ledger"));

  (* The volume comes back; repair restores redundancy. *)
  M.repair mirror (path "ledger");
  M.set_degraded mirror None;
  Printf.printf "after repair, replicas identical: %b\n"
    (M.verify mirror (path "ledger"));
  Printf.printf "read after failover cycle: %s\n"
    (Bytes.to_string (F.read f ~pos:0 ~len:11));

  (* Stack the extended-attribute layer on the mirror and use the Xattr
     interface discovered by narrowing. *)
  let attr = S.instantiate (N.creators alpha) "attrfs" ~name:"attr0" in
  S.stack_on attr mirror;
  let tagged = S.open_file attr (path "ledger") in
  (match A.xattrs tagged with
  | Some xa ->
      xa.A.xa_set "owner" "finance";
      xa.A.xa_set "retention" "7y";
      Printf.printf "xattrs on ledger: [%s]\n"
        (String.concat "; "
           (List.map (fun (k, v) -> k ^ "=" ^ v) (xa.A.xa_list ())))
  | None -> print_endline "BUG: attrfs file did not narrow");
  Printf.printf "directory listing hides attribute shadows: [%s]\n"
    (String.concat "; " (S.listdir attr (path "/")));
  (* The shadow replica is itself mirrored. *)
  S.sync attr;
  Printf.printf "shadow mirrored too: %b\n" (M.verify mirror (path ".xattr.ledger"))
