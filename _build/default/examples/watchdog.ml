(* Per-file interposition (paper 5): watchdog-style semantics changes on
   individual files — an access log, a read-only guard, and a transforming
   view — plus name-resolution-time interposition on a directory.

   Run with: dune exec examples/watchdog.exe *)

module F = Sp_core.File
module S = Sp_core.Stackable
module I = Sp_core.Interpose
module N = Sp_node.Node

let path = Sp_naming.Sname.of_string

let () =
  let world = N.World.create () in
  let alpha = N.World.add_node world "alpha" in
  ignore (N.add_disk alpha ~name:"disk0" ~blocks:2048);
  Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");
  let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:"home" in
  S.mkdir sfs (path "etc");
  let passwd = S.create sfs (path "etc/passwd") in
  ignore (F.write passwd ~pos:0 (Bytes.of_string "root:x:0:0\nkhalidi:x:100:10\n"));
  let motd = S.create sfs (path "etc/motd") in
  ignore (F.write motd ~pos:0 (Bytes.of_string "welcome to spring\n"));

  (* 1. An auditing watchdog on one file. *)
  let domain = Sp_obj.Sdomain.create ~node:"alpha" "watchdog" in
  let audit = ref [] in
  let audited =
    I.interpose_file ~domain
      (I.logging_hooks ~log:(fun op -> audit := op :: !audit))
      passwd
  in
  ignore (F.read audited ~pos:0 ~len:10);
  ignore (F.stat audited);
  ignore (F.write audited ~pos:0 (Bytes.of_string "ROOT"));
  Printf.printf "audit trail for /etc/passwd: [%s]\n"
    (String.concat "; " (List.rev !audit));

  (* 2. A read-only guard. *)
  let guarded = I.interpose_file ~domain (I.read_only_hooks ()) motd in
  Printf.printf "motd (guarded): %s"
    (Bytes.to_string (F.read guarded ~pos:0 ~len:50));
  (try ignore (F.write guarded ~pos:0 (Bytes.of_string "defaced"))
   with Sp_core.Fserr.Read_only what ->
     Printf.printf "write refused as expected: %s\n" what);

  (* 3. A semantic transform: a shouting view of the same bytes. *)
  let shouting =
    I.interpose_file ~domain
      {
        I.no_hooks with
        on_read =
          Some
            (fun orig ~pos ~len ->
              Bytes.map Char.uppercase_ascii (F.read orig ~pos ~len));
      }
      motd
  in
  Printf.printf "motd (shouting view): %s"
    (Bytes.to_string (F.read shouting ~pos:0 ~len:50));

  (* 4. Name-resolution-time interposition: swap the context and intercept
     resolutions of one name only. *)
  let root = N.root alpha in
  let etc_ctx = Sp_naming.Context.resolve_context sfs.S.sfs_ctx (path "etc") in
  Sp_naming.Context.bind root (path "etc") (Sp_naming.Context.Context etc_ctx);
  let hits = ref 0 in
  let _original =
    I.interpose_names ~domain ~root ~at:(path "etc")
      ~select:(fun name -> name = "passwd")
      ~wrap:(fun f -> I.interpose_file ~domain (I.logging_hooks ~log:(fun _ -> incr hits)) f)
      ()
  in
  (match Sp_naming.Context.resolve root (path "etc/passwd") with
  | F.File f -> ignore (F.read f ~pos:0 ~len:4)
  | _ -> assert false);
  (match Sp_naming.Context.resolve root (path "etc/motd") with
  | F.File f -> ignore (F.read f ~pos:0 ~len:4)
  | _ -> assert false);
  Printf.printf
    "after name-space interposition: passwd intercepted %d time(s), motd passed through\n"
    !hits
