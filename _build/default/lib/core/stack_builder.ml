let stack ~creators ~base layers =
  let add under (type_name, instance_name) =
    let fs = Stackable.instantiate creators type_name ~name:instance_name in
    Stackable.stack_on fs under;
    fs
  in
  List.fold_left add base layers

let expose ~root ~at fs = Sp_naming.Context.bind root at (Stackable.Fs fs)

let resolve_fs root name =
  match Sp_naming.Context.resolve root name with
  | Stackable.Fs fs -> fs
  | _ ->
      raise
        (Stackable.Stack_error
           (Sp_naming.Sname.to_string name ^ ": not a stackable file system"))

let layers fs =
  let rec go acc fs =
    match fs.Stackable.sfs_unders () with
    | [ under ] -> go (fs :: acc) under
    | _ -> fs :: acc
  in
  List.rev (go [] fs)
