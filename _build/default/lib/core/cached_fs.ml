let registry : (string, Sp_naming.Name_cache.t) Hashtbl.t = Hashtbl.create 4

let attach ?(capacity = 256) ?domain (fs : Stackable.t) =
  (* The cache is client-side state: its context is served in the caller's
     domain, so a hit involves no door crossing at all. *)
  let domain = Option.value domain ~default:Sp_obj.Door.user_domain in
  let cache = Sp_naming.Name_cache.create ~capacity () in
  let name = fs.Stackable.sfs_name ^ "+ncache" in
  Hashtbl.replace registry name cache;
  let lower_ctx = fs.Stackable.sfs_ctx in
  (* Single-component resolutions consult the cache; deeper walks start
     from cached intermediate contexts naturally because the view's
     sub-contexts come from the underlying layer. *)
  let resolve1 component =
    match
      Sp_naming.Name_cache.resolve cache lower_ctx
        (Sp_naming.Sname.of_components [ component ])
    with
    | o -> o
    | exception Sp_naming.Context.Unbound _ ->
        raise (Sp_naming.Context.Unbound (name ^ "/" ^ component))
  in
  let invalidate path =
    (* Only first components are cached by this view. *)
    match Sp_naming.Sname.components path with
    | first :: _ ->
        Sp_naming.Name_cache.invalidate cache (Sp_naming.Sname.of_components [ first ])
    | [] -> ()
  in
  let ctx =
    {
      lower_ctx with
      Sp_naming.Context.ctx_domain = domain;
      ctx_label = name;
      ctx_resolve1 = resolve1;
      ctx_bind1 =
        (fun c o ->
          invalidate (Sp_naming.Sname.of_components [ c ]);
          lower_ctx.Sp_naming.Context.ctx_bind1 c o);
      ctx_rebind1 =
        (fun c o ->
          invalidate (Sp_naming.Sname.of_components [ c ]);
          lower_ctx.Sp_naming.Context.ctx_rebind1 c o);
      ctx_unbind1 =
        (fun c ->
          invalidate (Sp_naming.Sname.of_components [ c ]);
          lower_ctx.Sp_naming.Context.ctx_unbind1 c);
    }
  in
  {
    fs with
    Stackable.sfs_name = name;
    sfs_ctx = ctx;
    sfs_create =
      (fun path ->
        invalidate path;
        fs.Stackable.sfs_create path);
    sfs_remove =
      (fun path ->
        invalidate path;
        fs.Stackable.sfs_remove path);
    sfs_mkdir =
      (fun path ->
        invalidate path;
        fs.Stackable.sfs_mkdir path);
    sfs_drop_caches =
      (fun () ->
        Sp_naming.Name_cache.clear cache;
        fs.Stackable.sfs_drop_caches ());
  }

let stats (fs : Stackable.t) =
  match Hashtbl.find_opt registry fs.Stackable.sfs_name with
  | Some cache -> Sp_naming.Name_cache.stats cache
  | None -> invalid_arg (fs.Stackable.sfs_name ^ ": not a cached view")
