type hooks = {
  on_read : (File.t -> pos:int -> len:int -> bytes) option;
  on_write : (File.t -> pos:int -> bytes -> int) option;
  on_stat : (File.t -> Sp_vm.Attr.t) option;
  on_truncate : (File.t -> int -> unit) option;
  before : (string -> unit) option;
}

let no_hooks =
  { on_read = None; on_write = None; on_stat = None; on_truncate = None; before = None }

let logging_hooks ~log = { no_hooks with before = Some log }

let read_only_hooks () =
  {
    no_hooks with
    on_write = (Some (fun f ~pos:_ _ -> raise (Fserr.Read_only f.File.f_id)));
    on_truncate = Some (fun f _ -> raise (Fserr.Read_only f.File.f_id));
  }

let interpose_file ~domain hooks (orig : File.t) =
  let notify op = match hooks.before with None -> () | Some f -> f op in
  {
    orig with
    File.f_domain = domain;
    f_read =
      (fun ~pos ~len ->
        notify "read";
        match hooks.on_read with
        | Some h -> h orig ~pos ~len
        | None -> File.read orig ~pos ~len);
    f_write =
      (fun ~pos data ->
        notify "write";
        match hooks.on_write with
        | Some h -> h orig ~pos data
        | None -> File.write orig ~pos data);
    f_stat =
      (fun () ->
        notify "stat";
        match hooks.on_stat with Some h -> h orig | None -> File.stat orig);
    f_set_attr =
      (fun attr ->
        notify "set_attr";
        File.set_attr orig attr);
    f_truncate =
      (fun len ->
        notify "truncate";
        match hooks.on_truncate with
        | Some h -> h orig len
        | None -> File.truncate orig len);
    f_sync =
      (fun () ->
        notify "sync";
        File.sync orig);
  }

let interpose_names ?principal ~domain ~root ~at ~select ~wrap () =
  let original = Sp_naming.Context.resolve_context ?principal root at in
  let memo : (string, File.t) Hashtbl.t = Hashtbl.create 8 in
  let resolve1 component =
    let obj =
      Sp_naming.Context.resolve ?principal original
        (Sp_naming.Sname.of_components [ component ])
    in
    match obj with
    | File.File f when select component -> (
        match Hashtbl.find_opt memo f.File.f_id with
        | Some wrapped -> File.File wrapped
        | None ->
            let wrapped = wrap f in
            Hashtbl.replace memo f.File.f_id wrapped;
            File.File wrapped)
    | other -> other
  in
  let interposer =
    {
      original with
      Sp_naming.Context.ctx_domain = domain;
      ctx_label = original.Sp_naming.Context.ctx_label ^ ":interposed";
      ctx_resolve1 = resolve1;
    }
  in
  Sp_naming.Context.rebind ?principal root at (Sp_naming.Context.Context interposer);
  original
