lib/core/cached_fs.ml: Hashtbl Option Sp_naming Sp_obj Stackable
