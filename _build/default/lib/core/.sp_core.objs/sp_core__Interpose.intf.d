lib/core/interpose.mli: File Sp_naming Sp_obj Sp_vm
