lib/core/interpose.ml: File Fserr Hashtbl Sp_naming Sp_vm
