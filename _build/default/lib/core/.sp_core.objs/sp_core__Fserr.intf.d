lib/core/fserr.mli:
