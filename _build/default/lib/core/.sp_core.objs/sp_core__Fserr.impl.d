lib/core/fserr.ml: Printexc
