lib/core/stackable.ml: File Fserr Sp_naming Sp_obj
