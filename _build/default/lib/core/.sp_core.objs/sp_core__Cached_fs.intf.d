lib/core/cached_fs.mli: Sp_naming Sp_obj Stackable
