lib/core/mapped_context.mli: File Sp_naming Sp_obj
