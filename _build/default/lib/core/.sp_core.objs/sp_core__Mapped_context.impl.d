lib/core/mapped_context.ml: File Hashtbl Sp_naming
