lib/core/stack_builder.ml: List Sp_naming Stackable
