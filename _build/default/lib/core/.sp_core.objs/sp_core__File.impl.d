lib/core/file.ml: Bytes Sp_naming Sp_obj Sp_vm
