lib/core/stack_builder.mli: Sp_naming Stackable
