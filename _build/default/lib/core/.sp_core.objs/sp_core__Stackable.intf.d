lib/core/stackable.mli: File Sp_naming Sp_obj
