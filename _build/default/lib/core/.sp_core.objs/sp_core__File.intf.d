lib/core/file.mli: Sp_naming Sp_obj Sp_vm
