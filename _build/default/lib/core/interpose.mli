(** Per-file interposition (paper §5) — watchdog-style semantics changes.

    Spring provides general object interposition: an object [o1] can be
    substituted for [o2] of type [foo] as long as [o1] is also of type
    [foo]; [o1] decides per operation whether to forward or to implement
    the functionality itself.  A second route is name-resolution-time
    interposition: unbind the context where the file is bound and bind an
    interposing context in its place, intercepting selected resolutions. *)

(** Per-operation overrides.  An absent hook forwards to the original file;
    a present hook receives the original and full control. *)
type hooks = {
  on_read : (File.t -> pos:int -> len:int -> bytes) option;
  on_write : (File.t -> pos:int -> bytes -> int) option;
  on_stat : (File.t -> Sp_vm.Attr.t) option;
  on_truncate : (File.t -> int -> unit) option;
  before : (string -> unit) option;
      (** observer invoked with the operation name before every operation,
          including forwarded ones *)
}

(** Hooks that forward everything (the identity interposer). *)
val no_hooks : hooks

(** Hooks that log each operation through [log]. *)
val logging_hooks : log:(string -> unit) -> hooks

(** Hooks that raise {!Fserr.Read_only} on [write]/[truncate]. *)
val read_only_hooks : unit -> hooks

(** [interpose_file ~domain hooks file] returns a file of the same type
    that applies [hooks].  The memory object is forwarded unchanged, so
    mappings still bind to the original pager — an interposer wanting to
    see page traffic must itself act as a cache manager (as CFS does). *)
val interpose_file : domain:Sp_obj.Sdomain.t -> hooks -> File.t -> File.t

(** [interpose_names ~domain ~root ~at ~select ~wrap] replaces the context
    bound at [at] under [root] with an interposing context: resolutions of
    file names satisfying [select] return [wrap original] (memoised); all
    other operations pass through.  Requires bind permission on [at]'s
    parent, per the ACL.  Returns the original context so it can be
    restored. *)
val interpose_names :
  ?principal:string ->
  domain:Sp_obj.Sdomain.t ->
  root:Sp_naming.Context.t ->
  at:Sp_naming.Sname.t ->
  select:(string -> bool) ->
  wrap:(File.t -> File.t) ->
  unit ->
  Sp_naming.Context.t
