(** Composing file-system stacks (paper §4.4–§4.5).

    The configuration method: look a creator up under [/fs_creators],
    [create] an instance, [stack_on] the underlying file system(s), then
    bind the new instance — it is a naming context — somewhere in the name
    space to expose its files. *)

(** [stack ~creators ~base layers] builds a tower bottom-up: for each
    [(type_name, instance_name)] in [layers], instantiate the creator and
    stack it on the previous top.  Returns the final top (or [base] if
    [layers] is empty). *)
val stack :
  creators:Sp_naming.Context.t ->
  base:Stackable.t ->
  (string * string) list ->
  Stackable.t

(** [expose ~root ~at fs] binds [fs] at name [at] under [root] — the
    administrative decision of which file systems to export, and to whom
    (the ACL of the target context governs who can resolve through it). *)
val expose : root:Sp_naming.Context.t -> at:Sp_naming.Sname.t -> Stackable.t -> unit

(** [resolve_fs root name] resolves a bound file system. *)
val resolve_fs : Sp_naming.Context.t -> Sp_naming.Sname.t -> Stackable.t

(** [layers fs] is the tower below (and including) [fs], top first,
    following sole underlying links; stops at a layer with zero or several
    underlays. *)
val layers : Stackable.t -> Stackable.t list
