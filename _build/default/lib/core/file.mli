(** The Spring file interface.

    A file inherits from the memory object interface (it can be mapped) and
    additionally provides read/write operations and attributes — but no
    paging operations; those live on the pager object reached through
    [bind] (paper §3.3.1, Table 1).

    File systems implement read/write "the same way as other Spring file
    systems: [they map] the file into [their] address space and read/write
    the mapped memory" (§4.2.1); {!mapped_ops} packages that standard
    implementation for reuse by every layer. *)

type t = {
  f_id : string;  (** stable identity, unique within a world *)
  f_domain : Sp_obj.Sdomain.t;  (** serving domain *)
  f_mem : Sp_vm.Vm_types.memory_object;  (** the inherited memory object *)
  f_read : pos:int -> len:int -> bytes;
      (** read up to [len] bytes; short result at end of file *)
  f_write : pos:int -> bytes -> int;
      (** write, extending the file as needed; returns bytes written *)
  f_stat : unit -> Sp_vm.Attr.t;
  f_set_attr : Sp_vm.Attr.t -> unit;
  f_truncate : int -> unit;
  f_sync : unit -> unit;  (** push cached data/attributes toward stable store *)
  f_exten : Sp_obj.Exten.t list;
}

type Sp_naming.Context.obj += File of t

(** {1 Call helpers} — door invocations on the file's serving domain. *)

val read : t -> pos:int -> len:int -> bytes
val write : t -> pos:int -> bytes -> int
val stat : t -> Sp_vm.Attr.t
val set_attr : t -> Sp_vm.Attr.t -> unit
val truncate : t -> int -> unit
val sync : t -> unit

(** [read_all f] reads the whole file (by [stat].len). *)
val read_all : t -> bytes

(** Narrow a bound object to a file. *)
val of_obj : Sp_naming.Context.obj -> t option

(** {1 Standard read/write implementation} *)

(** The result of {!mapped_ops}: read/write/sync closures implemented over a
    lazily-created VMM mapping of the file's memory object. *)
type mapped_ops = {
  mo_read : pos:int -> len:int -> bytes;
  mo_write : pos:int -> bytes -> int;
  mo_sync : unit -> unit;
}

(** [mapped_ops ~vmm ~mem ~get_attr ~set_attr_len] builds read/write that
    map [mem] through [vmm] on first use.  [get_attr] supplies the current
    length (for short reads); [set_attr_len new_len] is called after a write
    extends the file, letting the layer update its length/mtime
    authoritatively. *)
val mapped_ops :
  vmm:Sp_vm.Vmm.t ->
  mem:Sp_vm.Vm_types.memory_object ->
  get_attr:(unit -> Sp_vm.Attr.t) ->
  set_attr_len:(int -> unit) ->
  mapped_ops
