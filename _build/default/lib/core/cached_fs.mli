(** Name-cached view of a stackable file system (§6.4).

    "We are currently implementing name caching in Spring in order to
    eliminate the network overhead of remote name resolutions.  However,
    this same implementation can be used, if necessary, to eliminate the
    domain crossing overhead as well."

    [attach fs] returns a file system whose context resolves through a
    {!Sp_naming.Name_cache}; name-space mutations made through the view
    (create, remove, rename, bind/unbind/rebind) invalidate the affected
    entries.  Mutations made behind the view's back follow the usual
    name-cache caveat: they are seen once the entry is invalidated or
    evicted. *)

(** [domain] is where the cache (and its context) lives — the client's
    domain, defaulting to the user domain. *)
val attach : ?capacity:int -> ?domain:Sp_obj.Sdomain.t -> Stackable.t -> Stackable.t

(** Hit/miss statistics of a view created by {!attach}.  Raises
    [Invalid_argument] on other file systems. *)
val stats : Stackable.t -> Sp_naming.Name_cache.stats
