(** Naming contexts of stacked layers.

    A layer that exports one file per underlying file (COMPFS, CRYPTFS,
    DFS, the coherency layer, ...) exposes a naming context that resolves
    names in the underlying file system's context and wraps the resulting
    file objects.  Wrapping is memoised on the underlying file identity so
    that repeated opens return the same upper file (and therefore reuse the
    same pager–cache channels and attribute caches). *)

(** [make ~domain ~label ~lower ~wrap_file ()] builds such a context.
    Sub-contexts (directories) of [lower] are wrapped recursively.  Binds,
    rebinds and unbinds are forwarded to [lower] unchanged.

    [on_miss], if given, is consulted when [lower] has no binding for a
    component — letting a layer synthesise files that "do not actually
    exist" in the underlying file system (paper §4.1).

    [on_file], if given, is invoked on {e every} resolution that returns a
    (wrapped) file, memoised or not — layers use it to account per-open
    work. *)
val make :
  domain:Sp_obj.Sdomain.t ->
  label:string ->
  lower:Sp_naming.Context.t ->
  wrap_file:(File.t -> File.t) ->
  ?on_miss:(string -> Sp_naming.Context.obj option) ->
  ?on_file:(File.t -> unit) ->
  unit ->
  Sp_naming.Context.t

(** [invalidate ctx] empties the wrap memo of a context built by {!make}
    (used by layers when dropping caches).  No-op for other contexts. *)
val invalidate : Sp_naming.Context.t -> unit
