lib/unix_emul/unix_emul.ml: Bytes Hashtbl Int List Result Sp_core Sp_naming Sp_vm String
