lib/unix_emul/unix_emul.mli: Sp_core Sp_vm
