(** UNIX emulation over the stackable file systems.

    Figure 1 lists "UNIX" among the servers of a Spring node, and §3.1
    notes that "support for running UNIX binaries is also provided [11]".
    This module is that adapter: POSIX-flavoured, errno-style file
    operations — per-process file descriptor tables, seek pointers, open
    flags — implemented entirely on the strongly-typed file and naming
    interfaces of any stackable file system.

    All calls return [('a, errno) result] rather than raising; the
    emulation maps the typed exceptions of the layers below onto classic
    errno values. *)

type errno = ENOENT | EEXIST | EBADF | EISDIR | ENOTDIR | ENOTEMPTY | ENOSPC | EACCES | EIO | EINVAL

val errno_to_string : errno -> string

(** A UNIX process: a root file system, a current working directory and a
    file descriptor table. *)
type process

type fd = int

val create_process : root:Sp_core.Stackable.t -> ?cwd:string -> unit -> process

(** {1 Path calls} *)

type open_flag = O_RDONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND | O_EXCL

val openf : process -> string -> open_flag list -> (fd, errno) result
val creat : process -> string -> (fd, errno) result
val unlink : process -> string -> (unit, errno) result
val mkdir : process -> string -> (unit, errno) result
val rmdir : process -> string -> (unit, errno) result
val rename : process -> string -> string -> (unit, errno) result
val link : process -> string -> string -> (unit, errno) result
val stat : process -> string -> (Sp_vm.Attr.t, errno) result
val readdir : process -> string -> (string list, errno) result
val chdir : process -> string -> (unit, errno) result
val getcwd : process -> string

(** {1 Descriptor calls} *)

val read : process -> fd -> int -> (bytes, errno) result
(** Sequential read at the seek pointer; advances it. *)

val write : process -> fd -> bytes -> (int, errno) result
(** Sequential write at the seek pointer (end of file under [O_APPEND]). *)

val pread : process -> fd -> pos:int -> len:int -> (bytes, errno) result
val pwrite : process -> fd -> pos:int -> bytes -> (int, errno) result

type whence = SEEK_SET | SEEK_CUR | SEEK_END

val lseek : process -> fd -> int -> whence -> (int, errno) result
val fstat : process -> fd -> (Sp_vm.Attr.t, errno) result
val ftruncate : process -> fd -> int -> (unit, errno) result
val fsync : process -> fd -> (unit, errno) result
val dup : process -> fd -> (fd, errno) result
(** The duplicate shares the open-file description (seek pointer), as in
    UNIX. *)

val close : process -> fd -> (unit, errno) result

(** Open descriptors (diagnostics). *)
val open_fds : process -> fd list
