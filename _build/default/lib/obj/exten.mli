(** Interface narrowing.

    Spring interfaces support subtype queries: a client holding a
    [pager_object] may attempt to narrow it to an [fs_pager]; if the narrow
    fails the client assumes it is talking to a simple storage pager (paper
    §4.3).  We model this with an extensible variant: each interface record
    carries a list of extensions, and [narrow] scans for the one a caller
    knows how to project. *)

type t = ..

(** [narrow extens project] returns the first extension accepted by
    [project], if any. *)
val narrow : t list -> (t -> 'a option) -> 'a option

(** [has extens project] is [true] iff [narrow] would succeed. *)
val has : t list -> (t -> 'a option) -> bool
