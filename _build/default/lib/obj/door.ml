let user_domain = Sdomain.create ~node:"local" "user"
let current_domain = ref user_domain
let current () = !current_domain

let charge_invocation target =
  let model = Sp_sim.Cost_model.current () in
  if Sdomain.equal !current_domain target then begin
    Sp_sim.Metrics.incr_local_calls ();
    Sp_sim.Simclock.advance model.local_call_ns
  end
  else begin
    Sp_sim.Metrics.incr_cross_domain_calls ();
    Sp_sim.Simclock.advance model.cross_domain_call_ns
  end

let call target f =
  charge_invocation target;
  let saved = !current_domain in
  current_domain := target;
  Fun.protect ~finally:(fun () -> current_domain := saved) f

let from domain f =
  let saved = !current_domain in
  current_domain := domain;
  Fun.protect ~finally:(fun () -> current_domain := saved) f

let kernel_call () =
  let model = Sp_sim.Cost_model.current () in
  Sp_sim.Metrics.incr_kernel_calls ();
  Sp_sim.Simclock.advance model.kernel_call_ns

let charge_copy bytes =
  let model = Sp_sim.Cost_model.current () in
  Sp_sim.Simclock.advance (bytes * model.copy_per_byte_ns)

let charge_cpu units =
  let model = Sp_sim.Cost_model.current () in
  Sp_sim.Simclock.advance (units * model.cpu_op_ns)
