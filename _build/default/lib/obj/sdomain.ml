type t = { id : int; name : string; node : string }

let counter = ref 0

let create ?(node = "local") name =
  incr counter;
  { id = !counter; name; node }

let name t = t.name
let node t = t.node
let id t = t.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp ppf t = Format.fprintf ppf "%s@%s#%d" t.name t.node t.id
