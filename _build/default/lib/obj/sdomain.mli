(** Spring domains.

    A domain is an address space with a collection of threads; a given
    domain may act as the server of some objects and the client of others
    (paper §3.1).  In the simulation a domain is a named identity used by
    {!Door} to decide whether an invocation is a local procedure call or a
    cross-domain call, and by the VMM to name page-cache owners. *)

type t

(** [create ?node name] makes a fresh domain.  [node] identifies the machine
    the domain runs on (defaults to ["local"]); two domains on different
    nodes can never share a VMM. *)
val create : ?node:string -> string -> t

val name : t -> string
val node : t -> string
val id : t -> int

(** Structural equality of domain identities. *)
val equal : t -> t -> bool

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
