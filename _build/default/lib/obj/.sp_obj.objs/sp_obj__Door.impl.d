lib/obj/door.ml: Fun Sdomain Sp_sim
