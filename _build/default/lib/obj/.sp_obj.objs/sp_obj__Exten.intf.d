lib/obj/exten.mli:
