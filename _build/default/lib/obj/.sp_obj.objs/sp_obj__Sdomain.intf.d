lib/obj/sdomain.mli: Format
