lib/obj/sdomain.ml: Format Int
