lib/obj/door.mli: Sdomain
