lib/obj/exten.ml: List Option
