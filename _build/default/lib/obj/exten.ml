type t = ..

let narrow extens project = List.find_map project extens
let has extens project = Option.is_some (narrow extens project)
