lib/unionfs/unionfs.mli: Sp_core Sp_naming Sp_obj Sp_vm
