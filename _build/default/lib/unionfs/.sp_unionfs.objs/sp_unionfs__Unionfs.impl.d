lib/unionfs/unionfs.ml: Bytes Hashtbl List Printf Sp_coherency Sp_core Sp_naming Sp_obj Sp_sim Sp_vm String
