(** UNIONFS — a union (overlay) file system layer.

    A further demonstration of the architecture's claim that a layer may
    stack on several file systems and "need not [have] a one-to-one
    correspondence between the files exported by a given layer and its
    underlying layers" (§4.1): the first [stack_on] supplies the writable
    top branch, later calls supply read-only lower branches.  Name
    resolution takes the first branch that binds the name; writes to a
    file found in a lower branch copy it up to the top branch first;
    removals of lower-branch files leave a whiteout in the top branch so
    the name stays hidden.

    Like the other transform layers it is a plain pager upward — stack a
    coherency layer (or DFS) on top for multi-cache coherence. *)

val make :
  ?node:string ->
  ?domain:Sp_obj.Sdomain.t ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator (type ["unionfs"]). *)
val creator : ?node:string -> vmm:Sp_vm.Vmm.t -> unit -> Sp_core.Stackable.creator

(** [branch_of fs path] tells which branch currently backs the file:
    [`Top] or [`Lower n] (0-based index among the read-only branches). *)
val branch_of : Sp_core.Stackable.t -> Sp_naming.Sname.t -> [ `Top | `Lower of int ]
