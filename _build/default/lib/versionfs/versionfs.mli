(** VERSIONFS — a file-versioning (snapshot) layer.

    Another functionality extension in the spirit of the paper's
    introduction: snapshots of individual files are retained in the
    underlying layer as hidden version files (".v<n>.<name>"), so no
    change to the underlying file system is needed.  [snapshot] captures
    the current contents; [open_version] returns a read-only file (writes
    are refused via the same interposition machinery as §5's watchdogs);
    [restore] copies a version back over the current file.

    Data operations pass straight through to the underlying file (the
    memory object is forwarded, as in ATTRFS), so versioning costs nothing
    on the data path. *)

val make :
  ?node:string ->
  ?domain:Sp_obj.Sdomain.t ->
  name:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator (type ["versionfs"]). *)
val creator : ?node:string -> unit -> Sp_core.Stackable.creator

(** Capture the current contents of the file at [path]; returns the new
    version number (1-based, monotonically increasing per file). *)
val snapshot : Sp_core.Stackable.t -> Sp_naming.Sname.t -> int

(** Existing version numbers, ascending. *)
val versions : Sp_core.Stackable.t -> Sp_naming.Sname.t -> int list

(** A read-only view of version [n].  Raises {!Sp_core.Fserr.No_such_file}
    for unknown versions. *)
val open_version :
  Sp_core.Stackable.t -> Sp_naming.Sname.t -> int -> Sp_core.File.t

(** Overwrite the current file with version [n]'s contents. *)
val restore : Sp_core.Stackable.t -> Sp_naming.Sname.t -> int -> unit

(** Delete version [n]. *)
val drop_version : Sp_core.Stackable.t -> Sp_naming.Sname.t -> int -> unit
