lib/versionfs/versionfs.ml: Bytes Hashtbl Int List Option Printf Sp_core Sp_naming Sp_obj Sp_sim String
