lib/versionfs/versionfs.mli: Sp_core Sp_naming Sp_obj
