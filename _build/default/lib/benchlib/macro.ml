module F = Sp_core.File
module S = Sp_core.Stackable
module W = Workload

type result = {
  config : Workload.config;
  total_ns : int;
  opens : int;
  reads : int;
  writes : int;
  stats : int;
}

(* Deterministic xorshift, so every configuration sees the same operation
   stream. *)
let make_rng seed =
  let state = ref (max 1 seed) in
  fun bound ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land max_int;
    !state mod bound

(* Sprite-flavoured file sizes: most files are a few KB, a few are tens of
   KB. *)
let size_of_file rng =
  match rng 10 with
  | 0 | 1 | 2 | 3 -> 1024 + rng 1024
  | 4 | 5 | 6 -> 4096 + rng 4096
  | 7 | 8 -> 8192 + rng 8192
  | _ -> 32768 + rng 16384

let run_config ?(files = 40) ?(rounds = 6) config =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 (fun () ->
      let inst = W.make_instance ~tag:"macro" config in
      let fs = inst.W.i_fs in
      let rng = make_rng 42 in
      let names =
        Array.init files (fun i -> Sp_naming.Sname.of_string (Printf.sprintf "f%03d" i))
      in
      (* Populate. *)
      Array.iter
        (fun n ->
          let f = S.create fs n in
          let size = size_of_file rng in
          ignore (F.write f ~pos:0 (Bytes.make size 'm')))
        names;
      S.sync fs;
      let opens = ref 0 and reads = ref 0 and writes = ref 0 and stats = ref 0 in
      let t0 = Sp_sim.Simclock.now () in
      for _round = 1 to rounds do
        Array.iter
          (fun n ->
            (* Each open is followed by a handful of operations, the mix
               skewed toward reads and stats as in the Sprite traces. *)
            let f = S.open_file fs n in
            incr opens;
            let ops = 3 + rng 5 in
            for _ = 1 to ops do
              match rng 10 with
              | 0 | 1 | 2 | 3 | 4 | 5 ->
                  let len = 512 + rng 3584 in
                  let attr = F.stat f in
                  let pos = if attr.Sp_vm.Attr.len <= len then 0 else rng (attr.Sp_vm.Attr.len - len) in
                  ignore (F.read f ~pos ~len);
                  incr reads
              | 6 | 7 ->
                  ignore (F.stat f);
                  incr stats
              | _ ->
                  let len = 256 + rng 1792 in
                  let attr = F.stat f in
                  let pos = if attr.Sp_vm.Attr.len <= len then 0 else rng (attr.Sp_vm.Attr.len - len) in
                  ignore (F.write f ~pos (Bytes.make len 'w'));
                  incr writes
            done)
          names
      done;
      {
        config;
        total_ns = Sp_sim.Simclock.now () - t0;
        opens = !opens;
        reads = !reads;
        writes = !writes;
        stats = !stats;
      })

let run () =
  List.map run_config
    [ W.Not_stacked; W.Stacked_one_domain; W.Stacked_two_domains ]

let print ppf results =
  match results with
  | [] -> ()
  | base :: _ ->
      Format.fprintf ppf
        "Macro workload (Sprite-style mix; %d opens, %d reads, %d writes, %d \
         stats):@."
        base.opens base.reads base.writes base.stats;
      List.iter
        (fun r ->
          Format.fprintf ppf "  %-22s %10.1f ms  (%5.1f%% vs not stacked)@."
            (W.config_label r.config)
            (float_of_int r.total_ns /. 1e6)
            (100. *. float_of_int r.total_ns /. float_of_int base.total_ns))
        results
