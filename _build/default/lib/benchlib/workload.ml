module F = Sp_core.File
module S = Sp_core.Stackable

let ps = Sp_vm.Vm_types.page_size

type config = Not_stacked | Stacked_one_domain | Stacked_two_domains

let config_label = function
  | Not_stacked -> "not stacked"
  | Stacked_one_domain -> "stacked, one domain"
  | Stacked_two_domains -> "stacked, two domains"

type instance = {
  i_fs : Sp_core.Stackable.t;
  i_vmm : Sp_vm.Vmm.t;
  i_disk : Sp_blockdev.Disk.t;
  i_file : Sp_core.File.t;
}

let counter = ref 0

let pattern n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr ((i * 131) land 0xff))
  done;
  b

let make_instance ?tag config =
  incr counter;
  let tag =
    match tag with
    | Some t -> Printf.sprintf "%s%d" t !counter
    | None -> Printf.sprintf "bench%d" !counter
  in
  let vmm = Sp_vm.Vmm.create ~node:tag ("vmm-" ^ tag) in
  let disk = Sp_blockdev.Disk.create ~label:("disk-" ^ tag) ~blocks:2048 () in
  Sp_sfs.Disk_layer.mkfs disk;
  let fs =
    match config with
    | Not_stacked -> Sp_coherency.Spring_sfs.make_mono ~node:tag ~vmm ~name:tag disk
    | Stacked_one_domain ->
        Sp_coherency.Spring_sfs.make_split ~node:tag ~vmm ~name:tag
          ~same_domain:true disk
    | Stacked_two_domains ->
        Sp_coherency.Spring_sfs.make_split ~node:tag ~vmm ~name:tag
          ~same_domain:false disk
  in
  let file = S.create fs (Sp_naming.Sname.of_string "bench") in
  ignore (F.write file ~pos:0 (pattern ps));
  (* Warm every path the cached rows measure. *)
  ignore (S.open_file fs (Sp_naming.Sname.of_string "bench"));
  ignore (F.read file ~pos:0 ~len:ps);
  ignore (F.stat file);
  { i_fs = fs; i_vmm = vmm; i_disk = disk; i_file = file }

let avg_ns ?(iters = 50) f =
  let t0 = Sp_sim.Simclock.now () in
  for _ = 1 to iters do
    f ()
  done;
  (Sp_sim.Simclock.now () - t0) / iters

let avg_ns_cold ?(iters = 10) ~cool f =
  let total = ref 0 in
  for _ = 1 to iters do
    cool ();
    let t0 = Sp_sim.Simclock.now () in
    f ();
    total := !total + (Sp_sim.Simclock.now () - t0)
  done;
  !total / iters

(* Scramble the head so cold operations pay a real seek, as on a shared
   1993 disk. *)
let scramble_head disk =
  let far = Sp_blockdev.Disk.block_count disk - 1 in
  ignore (Sp_blockdev.Disk.read disk far)

let make_cold inst =
  S.sync inst.i_fs;
  S.drop_caches inst.i_fs;
  Sp_vm.Vmm.drop_caches inst.i_vmm;
  scramble_head inst.i_disk

let ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e6)
