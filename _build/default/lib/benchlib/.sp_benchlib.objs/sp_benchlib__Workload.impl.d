lib/benchlib/workload.ml: Bytes Char Printf Sp_blockdev Sp_coherency Sp_core Sp_naming Sp_sfs Sp_sim Sp_vm
