lib/benchlib/ablations.mli: Format
