lib/benchlib/table3.mli: Format
