lib/benchlib/table3.ml: Bytes Format List Sp_baseline Sp_blockdev Sp_core Sp_naming Sp_sim Sp_vm String Workload
