lib/benchlib/ablations.ml: Bytes Format List Printf Sp_blockdev Sp_cfs Sp_coherency Sp_compfs Sp_core Sp_cryptfs Sp_dfs Sp_naming Sp_sfs Sp_sim Sp_vm Workload
