lib/benchlib/figures.ml: Bytes Format Sp_blockdev Sp_coherency Sp_compfs Sp_core Sp_naming Sp_sfs Sp_sim Sp_vm Workload
