lib/benchlib/workload.mli: Sp_blockdev Sp_core Sp_vm
