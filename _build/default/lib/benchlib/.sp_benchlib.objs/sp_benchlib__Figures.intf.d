lib/benchlib/figures.mli: Format
