lib/benchlib/macro.ml: Array Bytes Format List Printf Sp_core Sp_naming Sp_sim Sp_vm Workload
