lib/benchlib/macro.mli: Format Workload
