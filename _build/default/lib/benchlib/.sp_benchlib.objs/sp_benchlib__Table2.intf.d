lib/benchlib/table2.mli: Format
