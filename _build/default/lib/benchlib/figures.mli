(** Executable reproductions of the paper's configuration figures that
    carry a measurable observable. *)

(** Figure 2: pager–cache channel multiplicity.  Returns
    [(channels_for_two_files_one_vmm, channels_for_one_file_two_vmms)] —
    the paper's example has 2 and 2. *)
val fig2_channel_counts : unit -> int * int

(** Figures 5/6: cost of the COMPFS→SFS coherent mode.  Returns
    [(incoherent_write_ns, coherent_write_ns)] for a warm 4 KB write
    through COMPFS in each stacking mode. *)
val fig56_compfs_modes : unit -> int * int

val print : Format.formatter -> unit -> unit
