(** Regenerates Table 2: "Spring Performance Measurements" — open / 4KB
    read / 4KB write / stat, with and without caching by the coherency
    layer, across the three stacking configurations. *)

type row = {
  operation : string;
  cached : bool option;  (** [None] when the distinction does not apply (open) *)
  ns : int array;  (** per-configuration simulated ns: [| mono; one; two |] *)
}

(** Run the workloads (under the [paper_1993] model) and return the rows. *)
val run : unit -> row list

(** Print the table in the paper's layout: time in ms and a percentage
    normalised to the non-stacked column. *)
val print : Format.formatter -> row list -> unit
