module F = Sp_core.File
module S = Sp_core.Stackable

let ps = Sp_vm.Vm_types.page_size

let fig2_channel_counts () =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 (fun () ->
      (* Pager 1: two distinct memory objects cached by one VMM. *)
      let vmm1 = Sp_vm.Vmm.create ~node:"n1" "fig2-vmm1" in
      let disk = Sp_blockdev.Disk.create ~blocks:512 () in
      Sp_sfs.Disk_layer.mkfs disk;
      let pager1 = Sp_sfs.Disk_layer.mount ~name:"fig2-pager1" disk in
      let f1 = S.create pager1 (Sp_naming.Sname.of_string "m1") in
      let f2 = S.create pager1 (Sp_naming.Sname.of_string "m2") in
      ignore (Sp_vm.Vmm.map vmm1 f1.F.f_mem);
      ignore (Sp_vm.Vmm.map vmm1 f2.F.f_mem);
      let two_files_one_vmm = Sp_sfs.Disk_layer.channel_count pager1 in
      (* Pager 2: one memory object cached by two VMMs. *)
      let vmm2 = Sp_vm.Vmm.create ~node:"n2" "fig2-vmm2" in
      let disk2 = Sp_blockdev.Disk.create ~blocks:512 () in
      Sp_sfs.Disk_layer.mkfs disk2;
      let pager2 = Sp_sfs.Disk_layer.mount ~name:"fig2-pager2" disk2 in
      let g = S.create pager2 (Sp_naming.Sname.of_string "shared") in
      ignore (Sp_vm.Vmm.map vmm1 g.F.f_mem);
      ignore (Sp_vm.Vmm.map vmm2 g.F.f_mem);
      let one_file_two_vmms = Sp_sfs.Disk_layer.channel_count pager2 in
      (two_files_one_vmm, one_file_two_vmms))

let compfs_write_ns ~coherent tag =
  let vmm = Sp_vm.Vmm.create ~node:tag ("vmm-" ^ tag) in
  let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
  Sp_sfs.Disk_layer.mkfs disk;
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~node:tag ~vmm ~name:("sfs-" ^ tag)
      ~same_domain:false disk
  in
  let comp = Sp_compfs.Compfs.make ~node:tag ~coherent ~vmm ~name:("comp-" ^ tag) () in
  S.stack_on comp sfs;
  let f = S.create comp (Sp_naming.Sname.of_string "bench") in
  let data = Bytes.make ps 'c' in
  ignore (F.write f ~pos:0 data);
  F.sync f;
  Workload.avg_ns ~iters:20 (fun () ->
      ignore (F.write f ~pos:0 data);
      F.sync f)

let fig56_compfs_modes () =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 (fun () ->
      let incoherent = compfs_write_ns ~coherent:false "fig5" in
      let coherent = compfs_write_ns ~coherent:true "fig6" in
      (incoherent, coherent))

let print ppf () =
  let a, b = fig2_channel_counts () in
  Format.fprintf ppf
    "Figure 2 observables: pager1 serves 2 memory objects at 1 VMM -> %d \
     channels; pager2 serves 1 memory object at 2 VMMs -> %d channels@."
    a b;
  let inc, coh = fig56_compfs_modes () in
  Format.fprintf ppf
    "Figures 5/6: COMPFS 4KB write+sync, incoherent %sms vs coherent (C3-P3) \
     %sms (%.0f%% overhead for downward coherency)@."
    (Workload.ms inc) (Workload.ms coh)
    (100. *. (float_of_int coh /. float_of_int inc -. 1.))
