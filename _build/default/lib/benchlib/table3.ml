module F = Sp_core.File
module S = Sp_core.Stackable
module U = Sp_baseline.Unixfs
module W = Workload

let ps = Sp_vm.Vm_types.page_size

type row = { operation : string; sunos_ns : int; spring_ns : int }

let run () =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 (fun () ->
      (* SunOS stand-in. *)
      let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
      let ufs = U.mkfs_and_mount disk in
      let fd = U.creat ufs "bench" in
      let data = Bytes.make ps 'w' in
      ignore (U.write ufs fd ~pos:0 data);
      ignore (U.openf ufs "bench");
      ignore (U.read ufs fd ~pos:0 ~len:ps);
      ignore (U.fstat ufs fd);
      let u_open = W.avg_ns (fun () -> ignore (U.openf ufs "bench")) in
      let u_read = W.avg_ns (fun () -> ignore (U.read ufs fd ~pos:0 ~len:ps)) in
      let u_write = W.avg_ns (fun () -> ignore (U.write ufs fd ~pos:0 data)) in
      let u_stat = W.avg_ns (fun () -> ignore (U.fstat ufs fd)) in
      (* Spring, production (two-domain) configuration. *)
      let inst = W.make_instance W.Stacked_two_domains in
      let name = Sp_naming.Sname.of_string "bench" in
      let s_open = W.avg_ns (fun () -> ignore (S.open_file inst.W.i_fs name)) in
      let s_read = W.avg_ns (fun () -> ignore (F.read inst.W.i_file ~pos:0 ~len:ps)) in
      let s_write = W.avg_ns (fun () -> ignore (F.write inst.W.i_file ~pos:0 data)) in
      let s_stat = W.avg_ns (fun () -> ignore (F.stat inst.W.i_file)) in
      [
        { operation = "open"; sunos_ns = u_open; spring_ns = s_open };
        { operation = "4KB read"; sunos_ns = u_read; spring_ns = s_read };
        { operation = "4KB write"; sunos_ns = u_write; spring_ns = s_write };
        { operation = "fstat"; sunos_ns = u_stat; spring_ns = s_stat };
      ])

let print ppf rows =
  Format.fprintf ppf
    "Table 3: SunOS 4.1.3 baseline vs Spring SFS (simulated; paper: 2-7x)@.";
  Format.fprintf ppf "%-10s | %12s | %12s | %8s@." "Operation" "SunOS (us)"
    "Spring (us)" "ratio";
  Format.fprintf ppf "%s@." (String.make 52 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s | %12.0f | %12.0f | %7.1fx@." r.operation
        (float_of_int r.sunos_ns /. 1e3)
        (float_of_int r.spring_ns /. 1e3)
        (float_of_int r.spring_ns /. float_of_int r.sunos_ns))
    rows
