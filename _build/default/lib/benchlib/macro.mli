(** Macro-benchmark (the paper's closing argument on open overhead).

    §6.4: "Based on the estimates of name lookup overhead on the
    macro-benchmarks in [16] (the Sprite measurements), we believe that the
    open overhead when two layers are in different domains will not be
    significant for real applications."

    This workload mimics the Sprite/Andrew-style mix those measurements
    describe: many small files, opens amortised over several I/O and
    attribute operations, reads dominating writes.  Running it across the
    three Table 2 configurations tests the claim: the two-domain stack's
    per-open penalty should wash out in the end-to-end figure. *)

type result = {
  config : Workload.config;
  total_ns : int;  (** simulated time for the whole workload *)
  opens : int;
  reads : int;
  writes : int;
  stats : int;
}

(** Deterministic workload: [files] small files (sizes drawn from a
    Sprite-like distribution), [rounds] passes of open/read/stat/write
    activity over them. *)
val run_config : ?files:int -> ?rounds:int -> Workload.config -> result

val run : unit -> result list

val print : Format.formatter -> result list -> unit
