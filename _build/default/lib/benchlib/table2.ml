module F = Sp_core.File
module S = Sp_core.Stackable
module W = Workload

let ps = Sp_vm.Vm_types.page_size

type row = { operation : string; cached : bool option; ns : int array }

let configs =
  [| W.Not_stacked; W.Stacked_one_domain; W.Stacked_two_domains |]

let measure_config config =
  let inst = W.make_instance config in
  let name = Sp_naming.Sname.of_string "bench" in
  let data = Bytes.make ps 'w' in
  let open_ns = W.avg_ns (fun () -> ignore (S.open_file inst.W.i_fs name)) in
  let read_hot = W.avg_ns (fun () -> ignore (F.read inst.W.i_file ~pos:0 ~len:ps)) in
  let write_hot =
    W.avg_ns (fun () -> ignore (F.write inst.W.i_file ~pos:0 data))
  in
  let stat_hot = W.avg_ns (fun () -> ignore (F.stat inst.W.i_file)) in
  let cool () = W.make_cold inst in
  let read_cold =
    W.avg_ns_cold ~cool (fun () -> ignore (F.read inst.W.i_file ~pos:0 ~len:ps))
  in
  let write_cold =
    W.avg_ns_cold ~cool (fun () -> ignore (F.write inst.W.i_file ~pos:0 data))
  in
  let stat_cold =
    W.avg_ns_cold ~cool (fun () -> ignore (F.stat inst.W.i_file))
  in
  [| open_ns; read_hot; read_cold; write_hot; write_cold; stat_hot; stat_cold |]

let run () =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 (fun () ->
      let per_config = Array.map measure_config configs in
      let col i = Array.map (fun m -> m.(i)) per_config in
      [
        { operation = "open"; cached = None; ns = col 0 };
        { operation = "4KB read"; cached = Some true; ns = col 1 };
        { operation = "4KB read"; cached = Some false; ns = col 2 };
        { operation = "4KB write"; cached = Some true; ns = col 3 };
        { operation = "4KB write"; cached = Some false; ns = col 4 };
        { operation = "stat"; cached = Some true; ns = col 5 };
        { operation = "stat"; cached = Some false; ns = col 6 };
      ])

let print ppf rows =
  Format.fprintf ppf
    "Table 2: Spring SFS, simulated 1993 cost model (ms; %% vs not stacked)@.";
  Format.fprintf ppf
    "%-11s %-8s | %13s | %13s | %13s@." "Operation" "Cached?" "Not stacked"
    "One domain" "Two domains";
  Format.fprintf ppf "%s@." (String.make 65 '-');
  List.iter
    (fun row ->
      let base = float_of_int row.ns.(0) in
      let cell i =
        Printf.sprintf "%s %4.0f%%" (W.ms row.ns.(i))
          (100. *. float_of_int row.ns.(i) /. base)
      in
      Format.fprintf ppf "%-11s %-8s | %13s | %13s | %13s@." row.operation
        (match row.cached with None -> "-" | Some true -> "yes" | Some false -> "no")
        (cell 0) (cell 1) (cell 2))
    rows
