(** Regenerates Table 3: SunOS 4.1.3 performance (the monolithic baseline)
    and the Spring/SunOS ratios the surrounding text discusses ("Spring is
    from 2 to 7 times slower than SunOS"). *)

type row = {
  operation : string;
  sunos_ns : int;  (** baseline (monolithic) simulated time *)
  spring_ns : int;  (** Spring SFS, two-domain configuration *)
}

val run : unit -> row list

val print : Format.formatter -> row list -> unit
