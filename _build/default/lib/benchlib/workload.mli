(** Benchmark workloads and measurement helpers.

    All measurements are of {e simulated} time under the [paper_1993] cost
    model, mirroring the paper's methodology: "each data point is the
    average of 5 runs of 10000 invocations of the given operation" — we
    run fewer invocations because the simulation is deterministic (zero
    variance), and report the per-operation average. *)

(** The three SFS configurations of Table 2. *)
type config = Not_stacked | Stacked_one_domain | Stacked_two_domains

val config_label : config -> string

(** A mounted SFS in the given configuration with a warm 4 KB benchmark
    file named ["bench"]. *)
type instance = {
  i_fs : Sp_core.Stackable.t;
  i_vmm : Sp_vm.Vmm.t;
  i_disk : Sp_blockdev.Disk.t;
  i_file : Sp_core.File.t;
}

(** Build an instance (fresh disk, fresh VMM, warmed caches).  [tag]
    prefixes the generated unique instance name. *)
val make_instance : ?tag:string -> config -> instance

(** Average simulated nanoseconds per call of [f] over [iters] calls. *)
val avg_ns : ?iters:int -> (unit -> unit) -> int

(** Like {!avg_ns} but runs [cool ()] before each timed call (cache
    dropping, disk-head scrambling). *)
val avg_ns_cold : ?iters:int -> cool:(unit -> unit) -> (unit -> unit) -> int

(** Evict the stack's caches and move the disk head somewhere far, so the
    next operation behaves like the paper's uncached rows. *)
val make_cold : instance -> unit

(** Render a duration as milliseconds with two decimals (Table 2's unit). *)
val ms : int -> string
