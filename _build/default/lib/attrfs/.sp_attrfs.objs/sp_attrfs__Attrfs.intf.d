lib/attrfs/attrfs.mli: Sp_core Sp_obj
