lib/attrfs/attrfs.ml: Buffer Bytes Char Hashtbl List Option Printf Sp_core Sp_naming Sp_obj Sp_sim String
