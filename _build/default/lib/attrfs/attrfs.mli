(** ATTRFS — an extended-attribute file system layer.

    "Generalized attribute lists" are among the attribute extensions §4.3
    anticipates, and the paper's answer to evolving interfaces is
    subclassing plus [narrow] rather than untyped escape hatches like
    [ioctl].  ATTRFS demonstrates exactly that: each exported file carries
    an {!Xattr} extension, discovered by narrowing the file's extension
    list, that stores arbitrary key/value pairs in a shadow file
    ([".xattr.<name>"]) beside the real file in the underlying layer.
    Shadow files are hidden from directory listings.

    Data operations and the memory object pass straight through to the
    underlying file, so mappings bind to the original pager (ATTRFS adds
    no data path of its own). *)

type xattr_ops = {
  xa_get : string -> string option;
  xa_set : string -> string -> unit;
  xa_remove : string -> unit;
  xa_list : unit -> (string * string) list;  (** sorted by key *)
}

type Sp_obj.Exten.t += Xattr of xattr_ops

(** Narrow a file to its extended-attribute interface ([None] for files
    not exported by an ATTRFS layer). *)
val xattrs : Sp_core.File.t -> xattr_ops option

val make :
  ?node:string ->
  ?domain:Sp_obj.Sdomain.t ->
  name:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator (type ["attrfs"]). *)
val creator : ?node:string -> unit -> Sp_core.Stackable.creator
