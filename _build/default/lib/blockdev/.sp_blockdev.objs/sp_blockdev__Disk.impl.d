lib/blockdev/disk.ml: Array Bytes Printf Sp_sim
