lib/blockdev/disk.mli:
