type kind = Regular | Directory

type t = {
  kind : kind;
  len : int;
  atime : int;
  mtime : int;
  ctime : int;
  nlink : int;
}

let fresh kind =
  let now = Sp_sim.Simclock.now () in
  { kind; len = 0; atime = now; mtime = now; ctime = now; nlink = 1 }

let touch_atime t = { t with atime = Sp_sim.Simclock.now () }

let touch_mtime t =
  let now = Sp_sim.Simclock.now () in
  { t with mtime = now; ctime = now }

let with_len t len = { t with len }

let equal a b =
  a.kind = b.kind && a.len = b.len && a.atime = b.atime && a.mtime = b.mtime
  && a.ctime = b.ctime && a.nlink = b.nlink

let pp ppf t =
  let kind = match t.kind with Regular -> "file" | Directory -> "dir" in
  Format.fprintf ppf "{%s len=%d atime=%d mtime=%d nlink=%d}" kind t.len t.atime
    t.mtime t.nlink
