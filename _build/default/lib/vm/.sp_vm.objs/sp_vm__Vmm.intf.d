lib/vm/vmm.mli: Sp_obj Vm_types
