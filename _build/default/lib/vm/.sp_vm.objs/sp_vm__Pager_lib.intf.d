lib/vm/pager_lib.mli: Sp_obj Vm_types
