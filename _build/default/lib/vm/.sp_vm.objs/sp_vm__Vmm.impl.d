lib/vm/vmm.ml: Bytes Fun Hashtbl Int List Printf Sp_obj Sp_sim Vm_types
