lib/vm/pager_lib.ml: Hashtbl List Option Sp_obj String Vm_types
