lib/vm/ram_pager.mli: Pager_lib Vm_types
