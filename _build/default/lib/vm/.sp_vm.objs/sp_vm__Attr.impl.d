lib/vm/attr.ml: Format Sp_sim
