lib/vm/ram_pager.ml: Bytes Pager_lib Sp_obj Vm_types
