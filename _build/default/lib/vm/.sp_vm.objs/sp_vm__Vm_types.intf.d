lib/vm/vm_types.mli: Attr Sp_obj
