lib/vm/vm_types.ml: Attr List Sp_obj Sp_sim
