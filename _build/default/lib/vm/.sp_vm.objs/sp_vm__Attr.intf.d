lib/vm/attr.mli: Format
