(** A simple storage pager.

    Provides only the plain pager-object functionality over a growable
    in-memory backing store — the kind of pager §4.3 has in mind when a
    file system's narrow to [fs_pager] fails.  Used by anonymous memory,
    tests, and examples. *)

type t

val create : ?node:string -> label:string -> unit -> t

(** The memory object to hand to cache managers; binds go through the
    standard channel registry. *)
val memory_object : t -> Vm_types.memory_object

(** Size of the backing store in bytes. *)
val store_size : t -> int

(** Read the backing store directly (no doors, no cache — test backdoor). *)
val peek : t -> pos:int -> len:int -> bytes

(** Write the backing store directly (test backdoor). *)
val poke : t -> pos:int -> bytes -> unit

(** Channels currently established with cache managers. *)
val channels : t -> Pager_lib.channel list

(** Total page-ins served by this pager. *)
val page_in_count : t -> int
