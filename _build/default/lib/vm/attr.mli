(** File attributes.

    The stackable attribute interface ({!Vm_types.fs_cache} /
    {!Vm_types.fs_pager}) caches and keeps coherent "the access and modified
    times and file length" (paper §4.3).  Times are virtual-clock
    nanoseconds. *)

type kind = Regular | Directory

type t = {
  kind : kind;
  len : int;  (** file length in bytes *)
  atime : int;  (** last access, virtual ns *)
  mtime : int;  (** last data modification, virtual ns *)
  ctime : int;  (** attribute change time, virtual ns *)
  nlink : int;  (** number of name-space links *)
}

(** Fresh attributes stamped with the current virtual time. *)
val fresh : kind -> t

val touch_atime : t -> t
val touch_mtime : t -> t
val with_len : t -> int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
