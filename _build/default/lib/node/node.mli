(** A Spring node (Figure 1): nucleus + VMM, a name server holding the
    shared root context, a [/fs_creators] context populated with every
    file-system creator in this repository, and a [/dev] registry of
    simulated disks.

    Nodes belong to a {!World}, which provides the network connecting
    them (for DFS). *)

type t

(** Node name, e.g. ["alpha"]. *)
val name : t -> string

(** The node's VMM. *)
val vmm : t -> Sp_vm.Vmm.t

(** The shared root naming context of the node. *)
val root : t -> Sp_naming.Context.t

(** The well-known creator registry context ([/fs_creators]). *)
val creators : t -> Sp_naming.Context.t

(** [add_disk t ~name ~blocks] creates (and registers under [/dev]) a
    simulated disk. *)
val add_disk : t -> name:string -> blocks:int -> Sp_blockdev.Disk.t

(** Look a registered disk up. *)
val disk : t -> string -> Sp_blockdev.Disk.t

(** Fresh per-domain namespace over the shared root (paper §3.2). *)
val namespace : t -> domain:Sp_obj.Sdomain.t -> Sp_naming.Namespace.t

(** [mount_sfs t ~disk_name ~name] builds the standard Spring SFS
    (coherency over disk layer) on a registered disk and binds it at
    [/fs/<name>]. *)
val mount_sfs : t -> disk_name:string -> name:string -> Sp_core.Stackable.t

(** [build_stack t ~base layers] composes layers by creator type on top of
    [base] (see {!Sp_core.Stack_builder.stack}). *)
val build_stack :
  t -> base:Sp_core.Stackable.t -> (string * string) list -> Sp_core.Stackable.t

(** {1 Worlds} *)

module World : sig
  type world

  val create : unit -> world

  (** The network joining the world's nodes. *)
  val net : world -> Sp_dfs.Net.t

  (** [add_node w name] creates a node; its default encryption key for the
      cryptfs creator is ["spring"]. *)
  val add_node : world -> string -> t
end
