lib/node/node.ml: Hashtbl Sp_attrfs Sp_blockdev Sp_coherency Sp_compfs Sp_core Sp_cryptfs Sp_dfs Sp_mirrorfs Sp_naming Sp_obj Sp_sfs Sp_unionfs Sp_versionfs Sp_vm
