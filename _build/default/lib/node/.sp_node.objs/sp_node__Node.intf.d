lib/node/node.mli: Sp_blockdev Sp_core Sp_dfs Sp_naming Sp_obj Sp_vm
