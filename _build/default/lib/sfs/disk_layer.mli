(** The SFS disk layer.

    Implements an on-disk UFS-compatible-in-spirit file system over a
    simulated block device (paper §6.2, Figure 10).  It is a base layer: it
    builds directly on a storage device and cannot be stacked on another
    file system.  It does {e not} implement a coherency algorithm — the
    coherency layer is stacked on top of it — and it does not cache file
    data; its only private state is the i-node cache (plus the allocation
    bitmaps), so open and stat are served without disk I/O while reads and
    writes reach the device.

    Files are exported with the full memory-object/pager contract: upper
    cache managers bind to a file's memory object and receive a pager
    backed by the device, with the [fs_pager] attribute subclass available
    by narrowing. *)

(** Format the device with an empty file system (root directory only). *)
val mkfs : Sp_blockdev.Disk.t -> unit

(** [mount ~name disk] mounts a formatted device and returns the layer as
    a stackable file system.  [node] (default ["local"]) places the
    serving domain; [domain] overrides it entirely (used to co-locate the
    disk layer with another layer for the same-domain experiments).
    Raises {!Sp_core.Fserr.Io_error} on an unformatted device. *)
val mount :
  ?node:string -> ?domain:Sp_obj.Sdomain.t -> name:string ->
  Sp_blockdev.Disk.t -> Sp_core.Stackable.t

(** [creator ~node ~get_disk] packages [mkfs]+[mount] as a stackable-fs
    creator: [cr_create ~name] formats (if needed) and mounts
    [get_disk name]. *)
val creator :
  ?node:string -> get_disk:(string -> Sp_blockdev.Disk.t) -> unit ->
  Sp_core.Stackable.creator

(** {1 Introspection (tests, tools)} *)

(** Free data blocks remaining. *)
val free_blocks : Sp_core.Stackable.t -> int

(** Free inodes remaining. *)
val free_inodes : Sp_core.Stackable.t -> int

(** Number of cached inodes (the layer's "small state"). *)
val cached_inodes : Sp_core.Stackable.t -> int

(** Live pager–cache channels served by this layer (Figure 2's count). *)
val channel_count : Sp_core.Stackable.t -> int
