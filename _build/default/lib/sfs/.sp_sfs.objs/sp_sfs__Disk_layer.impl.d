lib/sfs/disk_layer.ml: Array Bitmap Bytes Dirent Hashtbl Inode Int32 Layout List Printf Sp_blockdev Sp_core Sp_naming Sp_obj Sp_sim Sp_vm String
