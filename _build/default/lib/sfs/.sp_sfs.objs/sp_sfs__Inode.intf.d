lib/sfs/inode.mli: Layout Sp_blockdev Sp_vm
