lib/sfs/fsck.ml: Array Bitmap Bytes Dirent Format Hashtbl Inode Int32 Layout List Option Sp_blockdev
