lib/sfs/bitmap.ml: Array Bytes Char Sp_blockdev
