lib/sfs/layout.ml: Bytes Int32 Sp_blockdev Sp_core
