lib/sfs/dirent.mli:
