lib/sfs/disk_layer.mli: Sp_blockdev Sp_core Sp_obj
