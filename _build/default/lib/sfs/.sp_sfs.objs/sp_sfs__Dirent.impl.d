lib/sfs/dirent.ml: Bytes Int32 Printf String
