lib/sfs/inode.ml: Array Bytes Hashtbl Int32 Int64 Layout List Option Printf Sp_blockdev Sp_core Sp_vm
