lib/sfs/bitmap.mli: Sp_blockdev
