lib/sfs/layout.mli:
