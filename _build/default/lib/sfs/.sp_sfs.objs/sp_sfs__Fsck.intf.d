lib/sfs/fsck.mli: Format Sp_blockdev
