(** Directory entries.

    A directory's data is an array of fixed-size 64-byte entries: inode
    number, kind tag, and a name of up to {!max_name} bytes.  Free slots
    have inode number 0 *and* an empty name (inode 0 is the root
    directory, which is never itself an entry target's child... it is,
    however, never stored as an entry because the root has no parent). *)

(** Entry size in bytes. *)
val entry_size : int

(** Maximum name length in bytes. *)
val max_name : int

type t = { ino : int; is_dir : bool; name : string }

(** [encode e] is the 64-byte on-disk form.  Raises [Invalid_argument] if
    the name is empty, too long, or contains ['/'] or ['\000']. *)
val encode : t -> bytes

(** [decode b off] reads the entry at byte [off]; [None] for a free slot. *)
val decode : bytes -> int -> t option

(** The all-zero free slot. *)
val free_slot : bytes

(** Validate a file name (used by create/mkdir before touching the disk). *)
val check_name : string -> unit
