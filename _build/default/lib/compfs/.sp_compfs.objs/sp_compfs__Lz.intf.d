lib/compfs/lz.mli:
