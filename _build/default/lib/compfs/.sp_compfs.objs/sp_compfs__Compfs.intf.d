lib/compfs/compfs.mli: Sp_core Sp_naming Sp_obj Sp_vm
