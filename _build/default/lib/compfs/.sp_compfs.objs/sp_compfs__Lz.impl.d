lib/compfs/lz.ml: Bytes Char Hashtbl Int32 List Option Printf
