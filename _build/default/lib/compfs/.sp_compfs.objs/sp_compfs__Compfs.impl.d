lib/compfs/compfs.ml: Bytes Fun Hashtbl Int32 Int64 List Lz Option Printf Sp_coherency Sp_core Sp_naming Sp_obj Sp_sim Sp_vm
