(** Self-contained LZSS compressor used by COMPFS.

    Classic byte-oriented LZSS: tokens are grouped eight per flag byte; a
    literal token is one byte, a match token packs a 12-bit backward
    distance and a 4-bit length (3–18 bytes).  Input that does not shrink
    is stored raw, so [compress] never expands by more than the 5-byte
    header plus one byte.

    Deterministic and dependency-free; the chunk size COMPFS feeds it is
    one VM page. *)

(** [compress data] returns the encoded form (including a header recording
    the original length and encoding kind). *)
val compress : bytes -> bytes

(** [decompress data] inverts {!compress}.  Raises
    [Invalid_argument] on a corrupt header or truncated stream. *)
val decompress : bytes -> bytes

(** Simulated CPU work units (≈ bytes touched) for compressing or
    decompressing [n] bytes — charged by COMPFS to the virtual clock. *)
val work_units : int -> int
