(* Header: 1 byte kind (0 = raw, 1 = lzss), 4 bytes little-endian original
   length.  LZSS body: flag bytes precede groups of eight tokens; flag bit
   set = match token (2 bytes: 12-bit distance-1, 4-bit length-3), clear =
   literal byte. *)

let header_size = 5
let min_match = 3
let max_match = 18
let window = 4096

let put_header b kind len =
  Bytes.set_uint8 b 0 kind;
  Bytes.set_int32_le b 1 (Int32.of_int len)

let compress_lzss src =
  let n = Bytes.length src in
  (* Worst case: every token a literal = n + n/8 + 1 flag bytes. *)
  let out = Bytes.create (header_size + n + (n / 8) + 2) in
  put_header out 1 n;
  (* Hash chains over 3-byte prefixes. *)
  let heads = Hashtbl.create 256 in
  let key i =
    (Char.code (Bytes.get src i) lsl 16)
    lor (Char.code (Bytes.get src (i + 1)) lsl 8)
    lor Char.code (Bytes.get src (i + 2))
  in
  let find_match i =
    if i + min_match > n then None
    else begin
      let candidates = Option.value (Hashtbl.find_opt heads (key i)) ~default:[] in
      let best = ref None in
      let consider j =
        if i - j <= window then begin
          let len = ref 0 in
          let limit = min max_match (n - i) in
          while !len < limit && Bytes.get src (j + !len) = Bytes.get src (i + !len) do
            incr len
          done;
          match !best with
          | Some (_, best_len) when !len <= best_len -> ()
          | _ -> if !len >= min_match then best := Some (j, !len)
        end
      in
      List.iter consider candidates;
      !best
    end
  in
  let record i =
    if i + min_match <= n then
      let k = key i in
      let prev = Option.value (Hashtbl.find_opt heads k) ~default:[] in
      (* Keep chains short; older candidates age out of the window anyway. *)
      let prev = if List.length prev > 16 then List.filteri (fun idx _ -> idx < 8) prev else prev in
      Hashtbl.replace heads k (i :: prev)
  in
  let pos = ref 0 in
  let out_pos = ref header_size in
  let flag_pos = ref 0 in
  let flag_bit = ref 8 in
  let emit_flag bit =
    if !flag_bit = 8 then begin
      flag_pos := !out_pos;
      Bytes.set_uint8 out !out_pos 0;
      incr out_pos;
      flag_bit := 0
    end;
    if bit then
      Bytes.set_uint8 out !flag_pos
        (Bytes.get_uint8 out !flag_pos lor (1 lsl !flag_bit));
    incr flag_bit
  in
  while !pos < n do
    (match find_match !pos with
    | Some (j, len) ->
        emit_flag true;
        let dist = !pos - j - 1 in
        Bytes.set_uint8 out !out_pos ((dist lsr 4) land 0xff);
        Bytes.set_uint8 out (!out_pos + 1) (((dist land 0xf) lsl 4) lor (len - min_match));
        out_pos := !out_pos + 2;
        for k = !pos to !pos + len - 1 do
          record k
        done;
        pos := !pos + len
    | None ->
        emit_flag false;
        Bytes.set out !out_pos (Bytes.get src !pos);
        incr out_pos;
        record !pos;
        incr pos)
  done;
  Bytes.sub out 0 !out_pos

let compress src =
  let n = Bytes.length src in
  let encoded = compress_lzss src in
  if Bytes.length encoded < n + header_size then encoded
  else begin
    let raw = Bytes.create (header_size + n) in
    put_header raw 0 n;
    Bytes.blit src 0 raw header_size n;
    raw
  end

let decompress data =
  if Bytes.length data < header_size then invalid_arg "Lz.decompress: short input";
  let kind = Bytes.get_uint8 data 0 in
  let n = Int32.to_int (Bytes.get_int32_le data 1) in
  if n < 0 then invalid_arg "Lz.decompress: bad length";
  match kind with
  | 0 ->
      if Bytes.length data < header_size + n then
        invalid_arg "Lz.decompress: truncated raw data";
      Bytes.sub data header_size n
  | 1 ->
      let out = Bytes.create n in
      let pos = ref header_size in
      let out_pos = ref 0 in
      let total = Bytes.length data in
      let flag = ref 0 in
      let flag_bit = ref 8 in
      while !out_pos < n do
        if !flag_bit = 8 then begin
          if !pos >= total then invalid_arg "Lz.decompress: truncated stream";
          flag := Bytes.get_uint8 data !pos;
          incr pos;
          flag_bit := 0
        end;
        let is_match = !flag land (1 lsl !flag_bit) <> 0 in
        incr flag_bit;
        if is_match then begin
          if !pos + 1 >= total then invalid_arg "Lz.decompress: truncated match";
          let b0 = Bytes.get_uint8 data !pos in
          let b1 = Bytes.get_uint8 data (!pos + 1) in
          pos := !pos + 2;
          let dist = ((b0 lsl 4) lor (b1 lsr 4)) + 1 in
          let len = (b1 land 0xf) + min_match in
          if dist > !out_pos then invalid_arg "Lz.decompress: bad distance";
          for _ = 1 to len do
            if !out_pos >= n then invalid_arg "Lz.decompress: overlong stream";
            Bytes.set out !out_pos (Bytes.get out (!out_pos - dist));
            incr out_pos
          done
        end
        else begin
          if !pos >= total then invalid_arg "Lz.decompress: truncated literal";
          Bytes.set out !out_pos (Bytes.get data !pos);
          incr pos;
          incr out_pos
        end
      done;
      out
  | k -> invalid_arg (Printf.sprintf "Lz.decompress: unknown kind %d" k)

let work_units n = 2 * n
