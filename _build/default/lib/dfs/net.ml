type stats = { messages : int; bytes : int }

type t = { mutable messages : int; mutable bytes : int }

let create () = { messages = 0; bytes = 0 }

let rpc t ~src ~dst ~bytes f =
  if String.equal src dst then f ()
  else begin
    let model = Sp_sim.Cost_model.current () in
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes;
    Sp_sim.Metrics.incr_net_messages ();
    Sp_sim.Metrics.add_net_bytes bytes;
    Sp_sim.Simclock.advance (model.net_rtt_ns + (bytes * model.net_per_byte_ns));
    f ()
  end

let stats t : stats = { messages = t.messages; bytes = t.bytes }

let reset_stats t =
  t.messages <- 0;
  t.bytes <- 0
