(** Simulated network between nodes.

    Substitute for the paper's "private DFS protocol" transport: a
    latency/bandwidth cost model plus counters.  All nodes live in one
    process; an RPC is a cost-charged, metric-counted direct call.
    Intra-node calls are free (and uncounted). *)

type t

type stats = { messages : int; bytes : int }

val create : unit -> t

(** [rpc t ~src ~dst ~bytes f] performs [f ()] as a remote invocation from
    node [src] to node [dst] carrying [bytes] of payload (request +
    response combined). *)
val rpc : t -> src:string -> dst:string -> bytes:int -> (unit -> 'a) -> 'a

val stats : t -> stats

val reset_stats : t -> unit
