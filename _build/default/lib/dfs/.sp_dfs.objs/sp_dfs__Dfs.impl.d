lib/dfs/dfs.ml: Bytes Hashtbl List Net Option Printf Sp_coherency Sp_core Sp_naming Sp_obj Sp_vm
