lib/dfs/net.ml: Sp_sim String
