lib/dfs/dfs.mli: Net Sp_core Sp_vm
