lib/dfs/net.mli:
