lib/sim/simclock.mli: Format
