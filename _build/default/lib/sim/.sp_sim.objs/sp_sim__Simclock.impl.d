lib/sim/simclock.ml: Format
