(** Name caching.

    The paper (§6.4) observes that the open overhead of split-domain stacks
    "can be eliminated" by name caching, which Spring was implementing to
    remove remote name-resolution costs.  A [Name_cache.t] caches full
    compound-name resolutions against one root context; hits avoid walking
    the context chain (and hence all door crossings). *)

type t

type stats = { hits : int; misses : int; invalidations : int }

(** [create ~capacity ()] makes an empty cache.  When full, an arbitrary
    entry is evicted (the 1993 prototype used a small direct-mapped
    cache; eviction policy is not load-bearing for the experiments). *)
val create : capacity:int -> unit -> t

(** Resolve through the cache. *)
val resolve : t -> ?principal:string -> Context.t -> Sname.t -> Context.obj

(** Drop a cached entry (called after unbind/rebind of that name). *)
val invalidate : t -> Sname.t -> unit

(** Drop everything. *)
val clear : t -> unit

val stats : t -> stats
