type permission = Resolve | Bind | Unbind

type t = (string * permission list) list

let open_acl = [ ("*", [ Resolve; Bind; Unbind ]) ]

let make entries = entries

let permits acl ~principal perm =
  let matches (who, perms) =
    (String.equal who "*" || String.equal who principal) && List.mem perm perms
  in
  List.exists matches acl

let grant acl ~principal perms = (principal, perms) :: acl

let revoke acl ~principal =
  List.filter (fun (who, _) -> not (String.equal who principal)) acl

let pp_permission ppf = function
  | Resolve -> Format.pp_print_string ppf "resolve"
  | Bind -> Format.pp_print_string ppf "bind"
  | Unbind -> Format.pp_print_string ppf "unbind"
