(** Access control lists for naming contexts.

    Naming contexts are associated with ACLs (paper §5, footnote 3): an
    interposer "has to be appropriately authenticated to be able to
    manipulate the name space".  A principal is just a string identity. *)

type permission = Resolve | Bind | Unbind

type t

(** ACL granting everything to everyone. *)
val open_acl : t

(** [make entries] builds an ACL from [(principal, permissions)] pairs.
    The distinguished principal ["*"] matches anybody. *)
val make : (string * permission list) list -> t

(** [permits acl ~principal perm] checks authorisation. *)
val permits : t -> principal:string -> permission -> bool

(** [grant acl ~principal perms] returns an ACL extended with [perms]. *)
val grant : t -> principal:string -> permission list -> t

(** [revoke acl ~principal] removes all entries of [principal]. *)
val revoke : t -> principal:string -> t

val pp_permission : Format.formatter -> permission -> unit
