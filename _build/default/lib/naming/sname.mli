(** Compound names.

    A name is a sequence of components separated by ['/'].  Contexts resolve
    one component at a time; compound resolution walks the context chain. *)

type t

(** Parse a textual name.  Leading/trailing/repeated separators are
    tolerated; ["/a//b/"] parses as [["a"; "b"]].  Components ["."] are
    dropped.  Raises [Invalid_argument] on [".."] (the Spring name space is
    a graph, not a tree; parent traversal is not defined). *)
val of_string : string -> t

val to_string : t -> string
val of_components : string list -> t
val components : t -> string list

(** [split name] is [Some (first_component, rest)], or [None] if empty. *)
val split : t -> (string * t) option

val is_empty : t -> bool

(** [single name] is the sole component, raising [Invalid_argument] if the
    name has zero or several components. *)
val single : t -> string

val append : t -> string -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
