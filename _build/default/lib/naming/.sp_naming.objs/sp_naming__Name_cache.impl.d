lib/naming/name_cache.ml: Context Hashtbl Sname
