lib/naming/acl.mli: Format
