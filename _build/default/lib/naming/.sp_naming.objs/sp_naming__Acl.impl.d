lib/naming/acl.ml: Format List String
