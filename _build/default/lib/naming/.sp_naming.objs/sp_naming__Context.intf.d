lib/naming/context.mli: Acl Sname Sp_obj
