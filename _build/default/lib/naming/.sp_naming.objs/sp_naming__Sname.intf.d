lib/naming/sname.mli: Format
