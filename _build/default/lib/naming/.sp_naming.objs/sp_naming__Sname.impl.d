lib/naming/sname.ml: Format List String
