lib/naming/namespace.ml: Context List Sname Sp_obj String
