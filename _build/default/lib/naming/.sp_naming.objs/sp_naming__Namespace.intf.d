lib/naming/namespace.mli: Context Sname Sp_obj
