lib/naming/context.ml: Acl Format Hashtbl List Sname Sp_obj String
