lib/naming/name_cache.mli: Context Sname
