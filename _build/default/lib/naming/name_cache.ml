type stats = { hits : int; misses : int; invalidations : int }

type t = {
  table : (string, Context.obj) Hashtbl.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create ~capacity () =
  { table = Hashtbl.create capacity; capacity; hits = 0; misses = 0; invalidations = 0 }

let evict_one t =
  match Hashtbl.fold (fun k _ _ -> Some k) t.table None with
  | Some k -> Hashtbl.remove t.table k
  | None -> ()

let resolve t ?principal root name =
  let key = Sname.to_string name in
  match Hashtbl.find_opt t.table key with
  | Some o ->
      t.hits <- t.hits + 1;
      o
  | None ->
      t.misses <- t.misses + 1;
      let o = Context.resolve ?principal root name in
      if Hashtbl.length t.table >= t.capacity then evict_one t;
      Hashtbl.replace t.table key o;
      o

let invalidate t name =
  let key = Sname.to_string name in
  if Hashtbl.mem t.table key then begin
    t.invalidations <- t.invalidations + 1;
    Hashtbl.remove t.table key
  end

let clear t = Hashtbl.reset t.table

let stats t = { hits = t.hits; misses = t.misses; invalidations = t.invalidations }
