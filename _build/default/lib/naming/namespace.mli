(** Per-domain name spaces.

    Each Spring domain has a context object implementing a per-domain name
    space; all domains share part of their name space but can customise the
    rest (paper §3.2).  A namespace is a thin overlay context: lookups try
    the private overlay first and fall back to the shared root. *)

type t

(** [create ~shared ~domain] builds a namespace for [domain] over the
    [shared] root context. *)
val create : shared:Context.t -> domain:Sp_obj.Sdomain.t -> t

(** The namespace viewed as an ordinary context (resolves overlay first,
    then the shared root; binds go to the overlay). *)
val as_context : t -> Context.t

val shared_root : t -> Context.t

(** Bind a private customisation visible only through this namespace. *)
val customize : t -> Sname.t -> Context.obj -> unit
