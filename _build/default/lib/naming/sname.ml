type t = string list

let of_components cs = cs

let of_string s =
  let raw = String.split_on_char '/' s in
  let keep = function
    | "" | "." -> None
    | ".." -> invalid_arg "Sname.of_string: '..' is not supported"
    | c -> Some c
  in
  List.filter_map keep raw

let to_string = function [] -> "/" | cs -> String.concat "/" cs
let components t = t
let split = function [] -> None | c :: rest -> Some (c, rest)
let is_empty t = t = []

let single = function
  | [ c ] -> c
  | t -> invalid_arg ("Sname.single: " ^ to_string t)

let append t c = t @ [ c ]
let equal a b = List.equal String.equal a b
let pp ppf t = Format.pp_print_string ppf (to_string t)
