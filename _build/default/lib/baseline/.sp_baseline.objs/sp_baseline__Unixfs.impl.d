lib/baseline/unixfs.ml: Array Bytes Hashtbl Int32 List Sp_blockdev Sp_core Sp_naming Sp_obj Sp_sfs Sp_sim String
