lib/baseline/unixfs.mli: Sp_blockdev Sp_vm
