(** Monolithic baseline file system (the SunOS 4.1.3 stand-in of Table 3).

    The same on-disk format as the SFS disk layer ({!Sp_sfs.Layout} &c.),
    but structured the way a monolithic UNIX kernel structures it: one
    "kernel" domain entered by a trap (not a cross-domain door), an
    integrated buffer cache in front of the device, i-node and name
    caches, and no object indirection between layers.  This reproduces the
    structural reason the paper's Table 3 shows SunOS 2–7 times faster
    than the (untuned, stacked, microkernel) Spring SFS.

    The interface is deliberately the classic one — open/read/write/
    fstat — rather than the stackable file interface. *)

type t

type fd

(** Format and mount a device. *)
val mkfs_and_mount : ?label:string -> Sp_blockdev.Disk.t -> t

(** Mount an already-formatted device. *)
val mount : ?label:string -> Sp_blockdev.Disk.t -> t

val creat : t -> string -> fd
val openf : t -> string -> fd

(** [read t fd ~pos ~len] — positional read (no seek-pointer state). *)
val read : t -> fd -> pos:int -> len:int -> bytes

val write : t -> fd -> pos:int -> bytes -> int
val fstat : t -> fd -> Sp_vm.Attr.t
val mkdir : t -> string -> unit
val unlink : t -> string -> unit
val fsync : t -> fd -> unit
val sync : t -> unit

(** Drop the buffer/name caches (cold-cache benchmark rows). *)
val drop_caches : t -> unit
