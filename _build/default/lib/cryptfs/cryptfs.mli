(** CRYPTFS — an encryption file system layer.

    One of the extensions the paper's introduction motivates.  Pages of
    the exported file map 1:1 onto pages of the underlying file through a
    length-preserving keystream transform, so — unlike COMPFS — lengths and
    attributes pass straight through; only data is transformed.

    The layer accesses the underlying file through the plain file
    interface (the Figure 5 arrangement); because the transform is
    deterministic and positional, direct readers of the underlying file
    see ciphertext, and a coherent view of plaintext is obtained by
    stacking a coherency layer (or DFS) on top, per §6.3. *)

(** [make ~vmm ~name ~key ()] creates an instance; stack on exactly one
    underlying file system. *)
val make :
  ?node:string ->
  ?domain:Sp_obj.Sdomain.t ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  key:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator (type ["cryptfs"]). *)
val creator :
  ?node:string -> vmm:Sp_vm.Vmm.t -> key:string -> unit -> Sp_core.Stackable.creator
