let hash_key key =
  (* FNV-1a over the key string. *)
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h

(* SplitMix64 step (on OCaml's 63-bit ints; plenty for a keystream). *)
let mix z =
  let z = z + 0x1e3779b97f4a7c15 in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let apply ~key ~page data =
  let n = Bytes.length data in
  let out = Bytes.create n in
  let seed = hash_key key lxor mix page in
  let state = ref seed in
  for i = 0 to n - 1 do
    if i mod 8 = 0 then state := mix !state;
    let ks = (!state lsr (8 * (i mod 8))) land 0xff in
    Bytes.set out i (Char.chr (Char.code (Bytes.get data i) lxor ks))
  done;
  out

let work_units n = n
