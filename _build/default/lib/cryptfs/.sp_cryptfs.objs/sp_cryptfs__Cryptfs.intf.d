lib/cryptfs/cryptfs.mli: Sp_core Sp_obj Sp_vm
