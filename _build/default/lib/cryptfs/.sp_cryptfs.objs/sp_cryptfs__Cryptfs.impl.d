lib/cryptfs/cryptfs.ml: Bytes Cipher Hashtbl List Option Printf Sp_coherency Sp_core Sp_naming Sp_obj Sp_sim Sp_vm
