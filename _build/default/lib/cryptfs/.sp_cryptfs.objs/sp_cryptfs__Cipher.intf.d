lib/cryptfs/cipher.mli:
