lib/cryptfs/cipher.ml: Bytes Char String
