(** Keystream cipher used by CRYPTFS.

    A position-dependent XOR keystream derived from (key, page index) with
    a SplitMix64-style generator.  Encryption and decryption are the same
    operation; ciphertext has exactly the plaintext's length, which is what
    lets CRYPTFS map file pages 1:1 onto container pages.  (A real
    deployment would use an authenticated wide-block cipher; the layer only
    needs a deterministic length-preserving transform.) *)

(** [apply ~key ~page data] encrypts/decrypts [data], which starts at the
    beginning of logical page [page].  Returns a fresh buffer. *)
val apply : key:string -> page:int -> bytes -> bytes

(** Simulated CPU work units for transforming [n] bytes. *)
val work_units : int -> int
