(** CFS — the attribute-caching file system (§6.2).

    CFS "interpose[s] on remote files when they are passed to the local
    machine".  For each interposed file it becomes a cache manager for the
    remote file by invoking [bind], caching attributes through the
    [fs_pager]/[fs_cache] operations; read/write requests are serviced by
    mapping the file into its address space, "thus utilizing the local VMM
    for caching the data".  Page-ins and page-outs from the local VMM go
    directly to the remote DFS (the bind is forwarded, CFS returning the
    remote pager–cache channel).

    CFS is optional: without it, every operation on a remote file goes to
    the remote DFS. *)

type t

val make : ?node:string -> vmm:Sp_vm.Vmm.t -> name:string -> unit -> t

(** Interpose on one remote file, returning the locally-served file.
    Idempotent per underlying file. *)
val interpose : t -> Sp_core.File.t -> Sp_core.File.t

(** Wrap a DFS import so that every file resolved through it is
    interposed — name-resolution-time interposition (§5) applied to the
    whole imported name space. *)
val wrap_import : t -> Sp_core.Stackable.t -> Sp_core.Stackable.t

(** Number of files currently holding a cached attribute copy. *)
val cached_attrs : t -> int
