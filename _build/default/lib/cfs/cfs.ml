module V = Sp_vm.Vm_types

type entry = {
  e_remote : Sp_core.File.t;
  mutable e_pager : V.pager_object option;  (* channel to the remote DFS *)
  mutable e_fs_pager : V.fs_pager_ops option;
  mutable e_attr : Sp_vm.Attr.t option;
  mutable e_attr_dirty : bool;
}

type t = {
  c_name : string;
  c_domain : Sp_obj.Sdomain.t;
  c_vmm : Sp_vm.Vmm.t;
  c_files : (string, entry) Hashtbl.t;  (* by bind key *)
  c_wrapped : (string, Sp_core.File.t) Hashtbl.t;
  mutable c_pending : entry option;  (* entry being bound right now *)
}

let make ?(node = "local") ~vmm ~name () =
  {
    c_name = name;
    c_domain = Sp_obj.Sdomain.create ~node ("cfs:" ^ name);
    c_vmm = vmm;
    c_files = Hashtbl.create 16;
    c_wrapped = Hashtbl.create 16;
    c_pending = None;
  }

(* CFS holds no page data (the VMM does), so its cache object only has to
   answer the attribute subclass; data ranges are empty. *)
let cache_object t e =
  {
    V.c_domain = t.c_domain;
    c_label = "cfs-cache:" ^ e.e_remote.Sp_core.File.f_id;
    c_flush_back = (fun ~offset:_ ~size:_ -> []);
    c_deny_writes = (fun ~offset:_ ~size:_ -> []);
    c_write_back = (fun ~offset:_ ~size:_ -> []);
    c_delete_range = (fun ~offset:_ ~size:_ -> ());
    c_zero_fill = (fun ~offset:_ ~size:_ -> ());
    c_populate = (fun ~offset:_ ~access:_ _ -> ());
    c_destroy = (fun () -> Hashtbl.remove t.c_files e.e_remote.Sp_core.File.f_id);
    c_exten =
      [
        V.Fs_cache
          {
            V.fc_invalidate_attr =
              (fun () ->
                e.e_attr <- None;
                e.e_attr_dirty <- false);
            fc_write_back_attr =
              (fun () ->
                if e.e_attr_dirty then begin
                  e.e_attr_dirty <- false;
                  e.e_attr
                end
                else None);
            fc_populate_attr =
              (fun a ->
                e.e_attr <- Some a;
                e.e_attr_dirty <- false);
          };
      ];
  }

let manager t =
  {
    V.cm_id = "cfs:" ^ t.c_name;
    cm_domain = t.c_domain;
    cm_connect =
      (fun ~key pager ->
        let e =
          match Hashtbl.find_opt t.c_files key with
          | Some e -> e
          | None -> (
              match t.c_pending with
              | Some e ->
                  Hashtbl.replace t.c_files key e;
                  e
              | None -> failwith (t.c_name ^ ": connect for unknown file " ^ key))
        in
        e.e_pager <- Some pager;
        e.e_fs_pager <- V.narrow_fs_pager pager;
        cache_object t e);
  }

let fetch_attr e =
  match e.e_attr with
  | Some a -> a
  | None ->
      let a =
        match (e.e_fs_pager, e.e_pager) with
        | Some ops, Some pager -> V.fs_get_attr pager ops
        | _ -> Sp_core.File.stat e.e_remote
      in
      e.e_attr <- Some a;
      e.e_attr_dirty <- false;
      a

let attr_sync_down e =
  if e.e_attr_dirty then begin
    (match (e.e_attr, e.e_fs_pager, e.e_pager) with
    | Some a, Some ops, Some pager -> V.fs_attr_sync pager ops a
    | Some a, _, _ -> Sp_core.File.set_attr e.e_remote a
    | None, _, _ -> ());
    e.e_attr_dirty <- false
  end

let update_attr e f =
  let a = fetch_attr e in
  let a' = f a in
  if not (Sp_vm.Attr.equal a a') then begin
    e.e_attr <- Some a';
    e.e_attr_dirty <- true
  end

let interpose t (remote : Sp_core.File.t) =
  match Hashtbl.find_opt t.c_wrapped remote.Sp_core.File.f_id with
  | Some f -> f
  | None ->
      (* The key the remote bind yields identifies the file at the server;
         we index the entry the same way [cm_connect] will see it. *)
      let e =
        {
          e_remote = remote;
          e_pager = None;
          e_fs_pager = None;
          e_attr = None;
          e_attr_dirty = false;
        }
      in
      (* Bind as cache manager for the remote file; [cm_connect] installs
         the entry under the bind key during the handshake. *)
      t.c_pending <- Some e;
      Fun.protect
        ~finally:(fun () -> t.c_pending <- None)
        (fun () -> ignore (V.bind remote.Sp_core.File.f_mem (manager t) V.Read_write));
      let mapped =
        Sp_core.File.mapped_ops ~vmm:t.c_vmm ~mem:remote.Sp_core.File.f_mem
          ~get_attr:(fun () -> fetch_attr e)
          ~set_attr_len:(fun len ->
            let old = (fetch_attr e).Sp_vm.Attr.len in
            if len > old then begin
              (* Extensions are written through so the server-side length
                 is authoritative for other clients. *)
              V.set_length remote.Sp_core.File.f_mem len;
              update_attr e (fun a -> Sp_vm.Attr.with_len a len)
            end;
            update_attr e Sp_vm.Attr.touch_mtime)
      in
      let f =
        {
          Sp_core.File.f_id = "cfs:" ^ t.c_name ^ ":" ^ remote.Sp_core.File.f_id;
          f_domain = t.c_domain;
          f_mem = remote.Sp_core.File.f_mem;
          f_read =
            (fun ~pos ~len ->
              update_attr e Sp_vm.Attr.touch_atime;
              mapped.Sp_core.File.mo_read ~pos ~len);
          f_write = mapped.Sp_core.File.mo_write;
          f_stat = (fun () -> fetch_attr e);
          f_set_attr = (fun a -> update_attr e (fun _ -> a));
          f_truncate =
            (fun len ->
              V.set_length remote.Sp_core.File.f_mem len;
              e.e_attr <- None);
          f_sync =
            (fun () ->
              mapped.Sp_core.File.mo_sync ();
              attr_sync_down e;
              Sp_core.File.sync e.e_remote);
          f_exten = remote.Sp_core.File.f_exten;
        }
      in
      Hashtbl.replace t.c_wrapped remote.Sp_core.File.f_id f;
      f

let wrap_import t (import : Sp_core.Stackable.t) =
  let ctx =
    Sp_core.Mapped_context.make ~domain:t.c_domain
      ~label:("cfs:" ^ t.c_name ^ ":" ^ import.Sp_core.Stackable.sfs_name)
      ~lower:import.Sp_core.Stackable.sfs_ctx ~wrap_file:(interpose t) ()
  in
  {
    import with
    Sp_core.Stackable.sfs_name = "cfs:" ^ import.Sp_core.Stackable.sfs_name;
    sfs_type = "cfs";
    sfs_ctx = ctx;
    sfs_create =
      (fun path -> interpose t (Sp_core.Stackable.create import path));
    sfs_sync =
      (fun () ->
        Hashtbl.iter (fun _ f -> Sp_core.File.sync f) t.c_wrapped;
        Sp_core.Stackable.sync import);
  }

let cached_attrs t =
  Hashtbl.fold (fun _ e n -> if e.e_attr = None then n else n + 1) t.c_files 0
