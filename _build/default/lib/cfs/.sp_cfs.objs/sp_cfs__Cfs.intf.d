lib/cfs/cfs.mli: Sp_core Sp_vm
