lib/cfs/cfs.ml: Fun Hashtbl Sp_core Sp_obj Sp_vm
