(** Per-block coherency state for the single-writer/multiple-readers
    protocol (paper §6.2).

    For each block of each file the layer tracks which pager–cache channels
    hold the block and in which mode.  The invariant maintained by
    {!Coherency_layer} is: at most one holder in read-write mode, and a
    read-write holder is the only holder. *)

type holder = { h_channel : int; mutable h_mode : Sp_vm.Vm_types.access }

type t

val create : unit -> t

(** Holders of block [idx] (possibly empty). *)
val holders : t -> int -> holder list

(** Record channel [ch] as holding block [idx] in [mode] (upgrading or
    adding as needed). *)
val record : t -> int -> ch:int -> mode:Sp_vm.Vm_types.access -> unit

(** Remove channel [ch] from block [idx]'s holders. *)
val remove : t -> int -> ch:int -> unit

(** Downgrade channel [ch] on block [idx] to read-only. *)
val downgrade : t -> int -> ch:int -> unit

(** Remove channel [ch] from every block (channel teardown). *)
val remove_channel : t -> ch:int -> unit

(** All block indices with at least one holder. *)
val populated_blocks : t -> int list

(** The protocol invariant: no block has two holders when one is
    read-write.  Exposed for property tests. *)
val invariant_holds : t -> bool
