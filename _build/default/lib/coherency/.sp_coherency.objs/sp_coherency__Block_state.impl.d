lib/coherency/block_state.ml: Hashtbl Int List Sp_vm
