lib/coherency/mrsw.ml: Block_state List Option Sp_vm
