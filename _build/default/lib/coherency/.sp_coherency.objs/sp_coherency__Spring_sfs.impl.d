lib/coherency/spring_sfs.ml: Coherency_layer Sp_core Sp_sfs
