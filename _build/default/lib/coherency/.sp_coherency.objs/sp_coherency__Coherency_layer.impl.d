lib/coherency/coherency_layer.ml: Block_state Bytes Hashtbl List Option Printf Sp_core Sp_naming Sp_obj Sp_sim Sp_vm
