lib/coherency/coherency_layer.mli: Sp_core Sp_obj Sp_vm
