lib/coherency/mrsw.mli: Sp_vm
