lib/coherency/spring_sfs.mli: Sp_blockdev Sp_core Sp_vm
