lib/coherency/block_state.mli: Sp_vm
