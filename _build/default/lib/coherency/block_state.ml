type holder = { h_channel : int; mutable h_mode : Sp_vm.Vm_types.access }

type t = (int, holder list ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let holders t idx =
  match Hashtbl.find_opt t idx with Some l -> !l | None -> []

let slot t idx =
  match Hashtbl.find_opt t idx with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t idx l;
      l

let record t idx ~ch ~mode =
  let l = slot t idx in
  match List.find_opt (fun h -> h.h_channel = ch) !l with
  | Some h ->
      (* Never silently downgrade: page-in RO while holding RW keeps RW. *)
      if mode = Sp_vm.Vm_types.Read_write then h.h_mode <- mode
  | None -> l := { h_channel = ch; h_mode = mode } :: !l

let remove t idx ~ch =
  match Hashtbl.find_opt t idx with
  | None -> ()
  | Some l ->
      l := List.filter (fun h -> h.h_channel <> ch) !l;
      if !l = [] then Hashtbl.remove t idx

let downgrade t idx ~ch =
  List.iter
    (fun h -> if h.h_channel = ch then h.h_mode <- Sp_vm.Vm_types.Read_only)
    (holders t idx)

let remove_channel t ~ch =
  let doomed = ref [] in
  Hashtbl.iter
    (fun idx l ->
      l := List.filter (fun h -> h.h_channel <> ch) !l;
      if !l = [] then doomed := idx :: !doomed)
    t;
  List.iter (Hashtbl.remove t) !doomed

let populated_blocks t = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let invariant_holds t =
  Hashtbl.fold
    (fun _ l ok ->
      ok
      &&
      let writers =
        List.length (List.filter (fun h -> h.h_mode = Sp_vm.Vm_types.Read_write) !l)
      in
      writers = 0 || (writers = 1 && List.length !l = 1))
    t true
