let make_split ?(node = "local") ~vmm ~name ~same_domain disk =
  let disk_name = name ^ ".disk" in
  let base = Sp_sfs.Disk_layer.mount ~node ~name:disk_name disk in
  let domain =
    if same_domain then Some base.Sp_core.Stackable.sfs_domain else None
  in
  let coh = Coherency_layer.make ~node ?domain ~vmm ~name () in
  Sp_core.Stackable.stack_on coh base;
  coh

let make_mono ?(node = "local") ~vmm ~name disk =
  let disk_name = name ^ ".disk" in
  let base = Sp_sfs.Disk_layer.mount ~node ~name:disk_name disk in
  let coh =
    Coherency_layer.make ~node ~domain:base.Sp_core.Stackable.sfs_domain
      ~embedded:true ~vmm ~name ()
  in
  Sp_core.Stackable.stack_on coh base;
  (* Present the pair as one non-stacked file system. *)
  { coh with Sp_core.Stackable.sfs_type = "sfs_mono" }

let disk_layer sfs = Sp_core.Stackable.sole_under sfs
