(** The Spring storage file system (SFS), assembled per Figure 10: a
    coherency layer stacked on the disk layer, all files exported via the
    coherency layer.

    Three configurations, matching the three columns of Table 2:
    - {!make_mono} — "not stacked": the coherency machinery compiled into
      the same layer as the disk code (the "regular C++ library" approach
      §6.2 says the authors first planned), one domain, one open record;
    - {!make_split} with [same_domain:true] — two layers, one domain;
    - {!make_split} with [same_domain:false] — two layers, two domains
      (the production arrangement, which lets the disk layer be locked in
      physical memory while the coherency layer stays pageable). *)

(** [make_split ~vmm ~name ~same_domain disk] mounts the disk layer on
    [disk] and stacks a coherency layer on it.  Returns the top
    (coherency) layer; the disk layer is reachable via [sfs_unders]. *)
val make_split :
  ?node:string ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  same_domain:bool ->
  Sp_blockdev.Disk.t ->
  Sp_core.Stackable.t

(** [make_mono ~vmm ~name disk] is the non-stacked SFS: both halves share
    one domain and one per-open record. *)
val make_mono :
  ?node:string ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  Sp_blockdev.Disk.t ->
  Sp_core.Stackable.t

(** The disk layer under an SFS built by this module. *)
val disk_layer : Sp_core.Stackable.t -> Sp_core.Stackable.t
