(* springfs — configuration tool and scenario driver for the simulated
   Spring extensible file system (the "proper extensible file system
   configuration tools" the paper lists as ongoing work, 8).

   The whole system is an in-process simulation, so each invocation builds
   a world, runs a scenario, and reports simulated time plus event
   counters. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module N = Sp_node.Node

let path = Sp_naming.Sname.of_string

let setup_base () =
  let world = N.World.create () in
  let alpha = N.World.add_node world "alpha" in
  ignore (N.add_disk alpha ~name:"disk0" ~blocks:8192);
  Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");
  let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:"sfs0" in
  (world, alpha, sfs)

(* --- springfs stack --- *)

let run_stack layers ops size verbose =
  let _world, alpha, sfs = setup_base () in
  let spec = List.mapi (fun i t -> (t, Printf.sprintf "%s%d" t i)) layers in
  let top =
    try N.build_stack alpha ~base:sfs spec
    with S.Stack_error msg ->
      prerr_endline ("stack error: " ^ msg);
      exit 1
  in
  Format.printf "stack: %s@."
    (String.concat " -> "
       (List.map (fun l -> l.S.sfs_type) (Sp_core.Stack_builder.layers top)));
  let before = Sp_sim.Metrics.snapshot () in
  let t0 = Sp_sim.Simclock.now () in
  let f = S.create top (path "workload") in
  let data = Bytes.init size (fun i -> Char.chr (i land 0xff)) in
  for i = 1 to ops do
    ignore (F.write f ~pos:0 data);
    ignore (F.read f ~pos:0 ~len:size);
    ignore (F.stat f);
    if verbose && i mod 50 = 0 then Format.printf "  ... %d/%d ops@." i ops
  done;
  S.sync top;
  let elapsed = Sp_sim.Simclock.now () - t0 in
  let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
  Format.printf "%d x (write+read+stat) of %d bytes: %a simulated@." ops size
    Sp_sim.Simclock.pp_duration elapsed;
  Format.printf "events: %a@." Sp_sim.Metrics.pp d;
  0

(* --- springfs tables --- *)

let run_tables which =
  let ppf = Format.std_formatter in
  let all = which = [] in
  let want name = all || List.mem name which in
  if want "table2" then begin
    Sp_benchlib.Table2.print ppf (Sp_benchlib.Table2.run ());
    Format.fprintf ppf "@."
  end;
  if want "table3" then begin
    Sp_benchlib.Table3.print ppf (Sp_benchlib.Table3.run ());
    Format.fprintf ppf "@."
  end;
  if want "figures" then Sp_benchlib.Figures.print ppf ();
  if want "ablations" then begin
    Sp_benchlib.Ablations.print ppf (Sp_benchlib.Ablations.run_all ());
    Sp_benchlib.Ablations.print_depth_sweep ppf (Sp_benchlib.Ablations.depth_sweep ())
  end;
  if want "macro" then begin
    Sp_benchlib.Macro.print ppf (Sp_benchlib.Macro.run ());
    Format.fprintf ppf "@."
  end;
  if want "faults" then begin
    Sp_benchlib.Faults.print ppf (Sp_benchlib.Faults.run ());
    Format.fprintf ppf "@."
  end;
  if want "failover" then begin
    Sp_benchlib.Failover.print ppf (Sp_benchlib.Failover.run ());
    Format.fprintf ppf "@."
  end;
  if want "scrub" then begin
    Sp_benchlib.Scrub.print ppf (Sp_benchlib.Scrub.run ());
    Format.fprintf ppf "@."
  end;
  0

(* --- springfs demo --- *)

let run_demo () =
  let world, alpha, sfs = setup_base () in
  let top =
    N.build_stack alpha ~base:sfs [ ("cryptfs", "crypt0"); ("compfs", "comp0") ]
  in
  Format.printf "demo stack: %s@."
    (String.concat " -> "
       (List.map (fun l -> l.S.sfs_type) (Sp_core.Stack_builder.layers top)));
  let f = S.create top (path "secret-report") in
  let text =
    Bytes.of_string
      (String.concat "\n" (List.init 500 (fun i -> Printf.sprintf "line %d: classified" i)))
  in
  ignore (F.write f ~pos:0 text);
  S.sync top;
  Format.printf "wrote %d bytes through compression+encryption@." (Bytes.length text);
  Format.printf "read back (first line): %s@."
    (Bytes.to_string (F.read f ~pos:0 ~len:18));
  let raw = F.read_all (S.open_file sfs (path "secret-report")) in
  Format.printf "base volume holds %d bytes of ciphertext container@."
    (Bytes.length raw);
  (* A remote client via DFS still sees plaintext. *)
  let dfs = N.build_stack alpha ~base:top [ ("dfs", "dfs0") ] in
  let import = Sp_dfs.Dfs.import ~net:(N.World.net world) ~client_node:"beta" dfs in
  Format.printf "remote client reads: %s@."
    (Bytes.to_string
       (F.read (S.open_file import (path "secret-report")) ~pos:0 ~len:18));
  0

(* --- springfs fsck --- *)

(* One-line machine-readable verdict: status, total count, then a count
   per problem category (stable names, stable order). *)
let fsck_summary problems =
  let count pred = List.length (List.filter pred problems) in
  let open Sp_sfs.Fsck in
  let cats =
    [
      ("unreachable_inode", count (function Unreachable_inode _ -> true | _ -> false));
      ("free_inode_referenced", count (function Free_inode_referenced _ -> true | _ -> false));
      ("bad_kind", count (function Bad_kind _ -> true | _ -> false));
      ("block_out_of_range", count (function Block_out_of_range _ -> true | _ -> false));
      ("block_double_use", count (function Block_double_use _ -> true | _ -> false));
      ("block_not_allocated", count (function Block_not_allocated _ -> true | _ -> false));
      ("block_leak", count (function Block_leak _ -> true | _ -> false));
      ("bad_nlink", count (function Bad_nlink _ -> true | _ -> false));
      ("checksum", count (function Checksum_mismatch _ -> true | _ -> false));
      ("dirindex", count (function Dir_index _ -> true | _ -> false));
    ]
  in
  Printf.sprintf "FSCK status=%s problems=%d%s"
    (if problems = [] then "clean" else "inconsistent")
    (List.length problems)
    (String.concat ""
       (List.filter_map
          (fun (name, n) -> if n = 0 then None else Some (Printf.sprintf " %s=%d" name n))
          cats))

let run_fsck ops journal crash_at no_recover verify_checksums =
  (match crash_at with
  | Some n when n < 1 ->
      Format.eprintf "springfs: --crash-at-write must be at least 1 (got %d)@." n;
      exit 2
  | _ -> ());
  let disk = Sp_blockdev.Disk.create ~label:"fsckdev" ~blocks:8192 () in
  Sp_sfs.Disk_layer.mkfs ~journal disk;
  let sfs = Sp_sfs.Disk_layer.mount ~name:"fsck0" disk in
  let workload () =
    S.mkdir sfs (path "dir");
    let f = S.create sfs (path "dir/file") in
    for i = 0 to ops - 1 do
      ignore (F.write f ~pos:(i * 512) (Bytes.make 512 (Char.chr (i land 0xff))))
    done;
    ignore (S.create sfs (path "doomed"));
    S.sync sfs;
    (* Second transaction reusing freed resources: a crash mid-flush here
       can leave mixed old/new metadata on an unjournaled volume. *)
    S.remove sfs (path "doomed");
    let g = S.create sfs (path "dir/file2") in
    ignore (F.write g ~pos:0 (Bytes.make 2048 'x'));
    F.truncate f (max 1 (ops * 256));
    S.sync sfs
  in
  (match crash_at with
  | None -> workload ()
  | Some n -> (
      let plan =
        Sp_fault.plan ~seed:n
          [ Sp_fault.rule ~point:"disk.write" ~label:"fsckdev" ~after:(n - 1)
              ~count:1 Sp_fault.Fail_stop ]
      in
      match Sp_fault.with_plan plan workload with
      | () -> Format.printf "fsck: workload completed before write %d@." n
      | exception Sp_fault.Crash msg -> Format.printf "fsck: %s@." msg));
  if not no_recover then begin
    let replayed = Sp_sfs.Disk_layer.recover disk in
    if replayed > 0 then Format.printf "fsck: journal replayed %d block(s)@." replayed
  end;
  let problems = Sp_sfs.Fsck.check ~verify_checksums disk in
  List.iter (Format.printf "fsck: %a@." Sp_sfs.Fsck.pp_problem) problems;
  print_endline (fsck_summary problems);
  if problems = [] then 0 else 1

(* --- springfs crash --- *)

let run_crash ops seed stride clients sync_heavy no_journal no_checksums torn
    expect_inconsistent =
  if stride < 1 then (
    Format.eprintf "springfs: --stride must be at least 1 (got %d)@." stride;
    exit 2);
  if ops < 1 then (
    Format.eprintf "springfs: --ops must be at least 1 (got %d)@." ops;
    exit 2);
  if clients < 1 then (
    Format.eprintf "springfs: --clients must be at least 1 (got %d)@." clients;
    exit 2);
  let journal = not no_journal in
  let checksums = not no_checksums in
  let report =
    Sp_sfs.Crash_sweep.sweep ~stride ~torn ~checksums ~clients ~sync_heavy
      ~journal ~ops ~seed ()
  in
  Format.printf "%a@." Sp_sfs.Crash_sweep.pp_report report;
  print_endline (Sp_sfs.Crash_sweep.summary report);
  let open Sp_sfs.Crash_sweep in
  (* Checksum-detected damage is still damage — a journaled volume must
     recover to a state where nothing is flagged; only the inverted mode
     treats detection as the expected (good) outcome. *)
  let failures = report.rp_lost + report.rp_corrupt + report.rp_detected in
  if expect_inconsistent then
    if failures = 0 then begin
      Format.eprintf
        "springfs: expected the sweep to find damage but every point survived@.";
      1
    end
    else if torn && checksums && report.rp_detected = 0 then begin
      (* With checksums on, a torn unjournaled write must be positively
         detected, not merely lost. *)
      Format.eprintf
        "springfs: torn sweep found damage but checksums never detected it@.";
      1
    end
    else begin
      Format.printf "sweep found inconsistent states, as expected without a journal@.";
      0
    end
  else if failures = 0 then 0
  else begin
    Format.eprintf
      "springfs: %d crash point(s) lost synced data, left the volume \
       inconsistent, or tripped block checksums@."
      failures;
    1
  end

(* --- springfs scrub --- *)

let run_scrub ops seed stride clients no_checksums mirror expect_undetected =
  if stride < 1 then (
    Format.eprintf "springfs: --stride must be at least 1 (got %d)@." stride;
    exit 2);
  if ops < 1 then (
    Format.eprintf "springfs: --ops must be at least 1 (got %d)@." ops;
    exit 2);
  if clients < 1 then (
    Format.eprintf "springfs: --clients must be at least 1 (got %d)@." clients;
    exit 2);
  let checksums = not no_checksums in
  let module CS = Sp_integrity.Corruption_sweep in
  let reports =
    List.map
      (fun kind ->
        CS.sweep ~stride ~checksums ~mirror ~clients ~kind ~ops ~seed ())
      [ CS.Bitrot; CS.Misdirected; CS.Lost ]
  in
  List.iter
    (fun r ->
      Format.printf "%a@." CS.pp_report r;
      print_endline (CS.summary r))
    reports;
  let silent = List.fold_left (fun acc r -> acc + r.CS.cr_silent) 0 reports in
  if expect_undetected then
    if silent = 0 then begin
      Format.eprintf
        "springfs: expected silent corruption without checksums but every point \
         was absorbed or detected@.";
      1
    end
    else begin
      Format.printf "sweep served corrupt bytes silently, as expected without checksums@.";
      0
    end
  else if silent = 0 then 0
  else begin
    Format.eprintf "springfs: %d injection point(s) served corrupt data undetected@."
      silent;
    1
  end

(* --- springfs scale --- *)

let run_scale clients budget seed dir_heavy sync_heavy stack check =
  if clients < 1 then (
    Format.eprintf "springfs: --clients must be at least 1 (got %d)@." clients;
    exit 2);
  if budget < 1 then (
    Format.eprintf "springfs: --budget must be at least 1 (got %d)@." budget;
    exit 2);
  if sync_heavy && (dir_heavy || stack = `Deep) then (
    Format.eprintf
      "springfs: --sync-heavy runs the base stack and op mix (drop \
       --dir-heavy / --stack deep)@.";
    exit 2);
  let open Sp_benchlib.Scale in
  let r =
    run_row ~budget ~dir_heavy ~deep:(stack = `Deep) ~sync_heavy ~clients ~seed
      ()
  in
  let label =
    if sync_heavy then "the journaled two-domain stack (sync-heavy mix)"
    else
      match stack with
      | `Deep -> "the deep stack (compression over a mirror of two bases)"
      | `Base -> "the shared two-domain stack"
  in
  print ~label Format.std_formatter [ r ];
  if sync_heavy then
    Format.printf
      "SCALE clients=%d ops=%d elapsed_ns=%d p50_ns=%d p99_ns=%d p999_ns=%d \
       queue_ns=%d switches=%d syncs=%d commits=%d absorbed=%d sync_p99_ns=%d@."
      r.sc_clients r.sc_ops r.sc_elapsed_ns r.sc_p50_ns r.sc_p99_ns
      r.sc_p999_ns r.sc_queue_ns r.sc_switches r.sc_syncs r.sc_commits
      r.sc_absorbed r.sc_sync_p99_ns
  else
    Format.printf
      "SCALE clients=%d ops=%d elapsed_ns=%d p50_ns=%d p99_ns=%d p999_ns=%d \
       queue_ns=%d switches=%d@."
      r.sc_clients r.sc_ops r.sc_elapsed_ns r.sc_p50_ns r.sc_p99_ns
      r.sc_p999_ns r.sc_queue_ns r.sc_switches;
  if not check then 0
  else if r.sc_queue_ns <= 0 then begin
    Format.eprintf
      "springfs: --check: no queue time recorded — contention never formed@.";
    1
  end
  else if r.sc_p50_ns <= 0 || r.sc_p99_ns <= r.sc_p50_ns then begin
    Format.eprintf
      "springfs: --check: expected p99 (%dns) above p50 (%dns) under \
       contention@."
      r.sc_p99_ns r.sc_p50_ns;
    1
  end
  else if sync_heavy && clients > 1 && r.sc_absorbed <= 0 then begin
    (* The sync-heavy smoke exists to prove group commit engages: with
       concurrent clients some syncs must ride another caller's commit. *)
    Format.eprintf
      "springfs: --check: sync-heavy run absorbed no syncs (commits=%d \
       syncs=%d) — group commit never engaged@."
      r.sc_commits r.sc_syncs;
    1
  end
  else 0

(* --- springfs failover --- *)

let run_failover ops seed stride clients deadline_ms no_supervisor
    expect_unavailable =
  if stride < 1 then (
    Format.eprintf "springfs: --stride must be at least 1 (got %d)@." stride;
    exit 2);
  if ops < 1 then (
    Format.eprintf "springfs: --ops must be at least 1 (got %d)@." ops;
    exit 2);
  if clients < 1 then (
    Format.eprintf "springfs: --clients must be at least 1 (got %d)@." clients;
    exit 2);
  (match deadline_ms with
  | Some d when d < 1 ->
      Format.eprintf "springfs: --deadline-ms must be at least 1 (got %d)@." d;
      exit 2
  | _ -> ());
  (* The default SLO scales with offered load: queueing alone makes tail
     latency grow roughly linearly in the client count (see `scale`), so a
     fixed deadline would fail on queue depth rather than on failover. *)
  let deadline_ms =
    match deadline_ms with Some d -> d | None -> max 1000 (100 * clients)
  in
  let supervised = not no_supervisor in
  let report =
    Sp_failover.Layer_crash_sweep.sweep ~stride ~supervised ~clients
      ~op_deadline_ns:(deadline_ms * 1_000_000) ~ops ~seed ()
  in
  Format.printf "%a@." Sp_failover.Layer_crash_sweep.pp_report report;
  print_endline (Sp_failover.Layer_crash_sweep.summary report);
  let open Sp_failover.Layer_crash_sweep in
  if expect_unavailable then
    if
      report.fr_unavailable = report.fr_points
      && report.fr_points > 0
      && report.fr_lost = 0 && report.fr_corrupt = 0
    then begin
      Format.printf
        "every crash point left the stack unavailable, as expected without a \
         supervisor@.";
      0
    end
    else begin
      Format.eprintf
        "springfs: expected every point unavailable, got served=%d \
         unavailable=%d lost=%d corrupt=%d@."
        report.fr_served report.fr_unavailable report.fr_lost report.fr_corrupt;
      1
    end
  else begin
    let failures = report.fr_unavailable + report.fr_lost + report.fr_corrupt in
    if failures = 0 then 0
    else begin
      (match report.fr_first_bad with
      | Some (layer, op, msg) ->
          Format.eprintf "springfs: first failure: layer %s, op %d: %s@." layer
            op msg
      | None -> ());
      Format.eprintf
        "springfs: %d crash point(s) became unavailable, lost synced data, or \
         left the volume inconsistent@."
        failures;
      1
    end
  end

(* --- springfs dfs-sweep --- *)

let run_dfs_sweep nodes clients ops seed stride partition no_leases deadline_ms
    expect_unavailable =
  if nodes < 1 then (
    Format.eprintf "springfs: --nodes must be at least 1 (got %d)@." nodes;
    exit 2);
  if clients < 1 then (
    Format.eprintf "springfs: --clients must be at least 1 (got %d)@." clients;
    exit 2);
  if partition && clients < 2 then (
    Format.eprintf "springfs: --partition needs at least 2 clients@.";
    exit 2);
  if stride < 1 then (
    Format.eprintf "springfs: --stride must be at least 1 (got %d)@." stride;
    exit 2);
  if ops < 1 then (
    Format.eprintf "springfs: --ops must be at least 1 (got %d)@." ops;
    exit 2);
  (match deadline_ms with
  | Some d when d < 1 ->
      Format.eprintf "springfs: --deadline-ms must be at least 1 (got %d)@." d;
      exit 2
  | _ -> ());
  (* Load-scaled SLO like `failover`, but much looser: a cluster op is
     an RPC into a shard whose device serves clients/nodes closed-loop
     queues through two journaled twins behind a mirror, and a store
     restart replays both journals before the first retried op lands —
     the op tail under a kill runs to seconds, not the failover sweep's
     hundreds of milliseconds. *)
  let deadline_ms =
    match deadline_ms with Some d -> d | None -> max 3000 (1000 * clients)
  in
  let lease_ns = if no_leases then 0 else Sp_cluster.Cluster.default_lease_ns in
  let report =
    Sp_cluster.Shard_crash_sweep.sweep ~stride ~partition ~lease_ns
      ~op_deadline_ns:(deadline_ms * 1_000_000) ~nodes ~clients ~ops ~seed ()
  in
  Format.printf "%a@." Sp_cluster.Shard_crash_sweep.pp_report report;
  print_endline (Sp_cluster.Shard_crash_sweep.summary report);
  let open Sp_cluster.Shard_crash_sweep in
  if expect_unavailable then
    if
      report.dr_unavailable = report.dr_points
      && report.dr_points > 0
      && report.dr_lost = 0 && report.dr_corrupt = 0
    then begin
      Format.printf
        "every point left the partitioned client without warm service, as \
         expected without leases@.";
      0
    end
    else begin
      (match report.dr_first_bad with
      | Some (mode, at, msg) ->
          Format.eprintf "springfs: first failure: %s, boundary %d: %s@." mode
            at msg
      | None -> ());
      Format.eprintf
        "springfs: expected every point unavailable, got served=%d \
         unavailable=%d lost=%d corrupt=%d@."
        report.dr_served report.dr_unavailable report.dr_lost report.dr_corrupt;
      1
    end
  else begin
    let failures = report.dr_unavailable + report.dr_lost + report.dr_corrupt in
    if failures = 0 then 0
    else begin
      (match report.dr_first_bad with
      | Some (mode, at, msg) ->
          Format.eprintf "springfs: first failure: %s, boundary %d: %s@." mode
            at msg
      | None -> ());
      Format.eprintf
        "springfs: %d sweep point(s) lost data, served stale bindings, or \
         went unavailable@."
        failures;
      1
    end
  end

(* --- springfs versions --- *)

let run_versions () =
  let _world, _alpha, sfs = setup_base () in
  let ver = Sp_versionfs.Versionfs.make ~name:"ver0" () in
  S.stack_on ver sfs;
  let f = S.create ver (path "report") in
  List.iteri
    (fun i text ->
      ignore (F.write f ~pos:0 (Bytes.of_string text));
      F.truncate f (String.length text);
      F.sync f;
      let v = Sp_versionfs.Versionfs.snapshot ver (path "report") in
      Format.printf "snapshot %d taken after revision %d@." v (i + 1))
    [ "draft"; "draft, reviewed"; "final" ];
  Format.printf "versions: [%s]@."
    (String.concat "; "
       (List.map string_of_int (Sp_versionfs.Versionfs.versions ver (path "report"))));
  let v1 = Sp_versionfs.Versionfs.open_version ver (path "report") 1 in
  Format.printf "version 1 content: %s@." (Bytes.to_string (F.read_all v1));
  Sp_versionfs.Versionfs.restore ver (path "report") 1;
  Format.printf "after restore, current: %s@." (Bytes.to_string (F.read_all f));
  0

(* --- springfs ls --- *)

(* With [--files N] this is the namespace-at-scale scenario: build one
   directory of N files (the flat format upgrades itself to the hash
   index past 128 entries) and stream it back with cursor readdir.
   Periodic sync + drop_caches keeps the live heap bounded by the cache
   sizes, not the file count; the traversal never materialises the
   listing.  The volume skips checksums (pure namespace exercise) and
   sizes its inode table to the file count. *)
let run_ls layers dir files =
  let _world, alpha, sfs =
    if files = 0 then setup_base ()
    else begin
      let world = N.World.create () in
      let alpha = N.World.add_node world "alpha" in
      let disk = N.add_disk alpha ~name:"disk0" ~blocks:((files / 8) + 131072) in
      Sp_sfs.Disk_layer.mkfs ~checksums:false ~inodes:(files + 64) disk;
      (world, alpha, N.mount_sfs alpha ~disk_name:"disk0" ~name:"sfs0")
    end
  in
  let spec = List.mapi (fun i t -> (t, Printf.sprintf "%s%d" t i)) layers in
  let top = N.build_stack alpha ~base:sfs spec in
  if files = 0 then begin
    S.mkdir top (path "example");
    ignore (S.create top (path "example/a"));
    ignore (S.create top (path "example/b"));
    let target = if dir = "" then "example" else dir in
    let names =
      List.sort String.compare
        (S.fold_dir top (path target) (fun acc n -> n :: acc) [])
    in
    Format.printf "%s: [%s]@." target (String.concat "; " names);
    0
  end
  else begin
    let dirname = if dir = "" then "big" else dir in
    S.mkdir top (path dirname);
    let t0 = Sp_sim.Simclock.now () in
    for i = 0 to files - 1 do
      ignore (S.create top (path (Printf.sprintf "%s/f%07d" dirname i)));
      if (i + 1) mod 65536 = 0 then begin
        S.sync top;
        S.drop_caches top
      end
    done;
    S.sync top;
    S.drop_caches top;
    let t_build = Sp_sim.Simclock.now () - t0 in
    let t1 = Sp_sim.Simclock.now () in
    let count = S.fold_dir top (path dirname) (fun n _ -> n + 1) 0 in
    let t_list = Sp_sim.Simclock.now () - t1 in
    let probe = Printf.sprintf "%s/f%07d" dirname (files - 1) in
    let t2 = Sp_sim.Simclock.now () in
    ignore (S.open_file top (path probe));
    let t_open = Sp_sim.Simclock.now () - t2 in
    Gc.compact ();
    let live_mb = Gc.((stat ()).live_words) * 8 / 1048576 in
    Format.printf "%s: built %d files (sim %a)@." dirname files
      Sp_sim.Simclock.pp_duration t_build;
    Format.printf "cursor readdir streamed %d entries (sim %a)@." count
      Sp_sim.Simclock.pp_duration t_list;
    Format.printf "open %s: sim %a@." probe Sp_sim.Simclock.pp_duration t_open;
    Format.printf "live heap after traversal: %d MB@." live_mb;
    if count <> files then begin
      Format.eprintf "springfs: expected %d entries, readdir returned %d@."
        files count;
      1
    end
    else 0
  end

(* --- springfs profile --- *)

let run_profile scenario layers ops size trace_out capacity =
  if capacity < 2 then (
    Format.eprintf "springfs: --capacity must be at least 2 (got %d)@." capacity;
    exit 2);
  let layers = if layers = [] then [ "coherency"; "compfs" ] else layers in
  let run () =
    match scenario with
    | `Demo -> ignore (run_demo ())
    | `Stack -> ignore (run_stack layers ops size false)
    | `Tables -> ignore (run_tables [])
  in
  let scenario_name =
    match scenario with `Demo -> "demo" | `Stack -> "stack" | `Tables -> "tables"
  in
  let (), trace =
    Sp_trace.with_tracing ~capacity ~root:("springfs " ^ scenario_name) run
  in
  Format.printf "@.per-layer profile (%s, %d spans, %a simulated):@.%a@."
    scenario_name
    (List.length trace.Sp_trace.tr_spans)
    Sp_sim.Simclock.pp_duration trace.Sp_trace.tr_total_ns Sp_trace.pp_profile
    trace;
  (match trace_out with
  | Some file -> (
      try
        Sp_trace.write_chrome_json file trace;
        Format.printf
          "chrome trace written to %s (open in chrome://tracing or Perfetto)@."
          file
      with Sys_error msg ->
        Format.eprintf "springfs: cannot write trace: %s@." msg;
        exit 2)
  | None -> ());
  0

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let layers_arg =
  let doc =
    "Comma-separated layer types to stack on the base SFS, bottom first \
     (available: coherency, compfs, cryptfs, attrfs, versionfs, dfs;\n\
     mirrorfs and unionfs need several underlays and are driven from code)."
  in
  Arg.(value & opt (list string) [] & info [ "layers"; "l" ] ~docv:"TYPES" ~doc)

let stack_cmd =
  let ops =
    Arg.(value & opt int 100 & info [ "ops" ] ~docv:"N" ~doc:"Operations to run.")
  in
  let size =
    Arg.(value & opt int 4096 & info [ "size" ] ~docv:"BYTES" ~doc:"I/O size.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Progress output.") in
  let doc = "build a file-system stack and run a measured workload" in
  Cmd.v (Cmd.info "stack" ~doc)
    Term.(const run_stack $ layers_arg $ ops $ size $ verbose)

let tables_cmd =
  let which =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TABLE"
          ~doc:
            "Subset to print: table2, table3, figures, ablations, macro, faults, \
             failover, scrub (default all).")
  in
  let doc = "regenerate the paper's evaluation tables (simulated)" in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run_tables $ which)

let demo_cmd =
  let doc = "run a small end-to-end demo (encryption + compression + DFS)" in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run_demo $ const ())

let ls_cmd =
  let dir =
    Arg.(value & opt string "" & info [ "dir" ] ~docv:"PATH" ~doc:"Directory to list.")
  in
  let files =
    Arg.(
      value & opt int 0
      & info [ "files" ] ~docv:"N"
          ~doc:
            "Build a directory of $(docv) files and stream it back with \
             cursor readdir (namespace-at-scale scenario; 0 runs the tiny \
             demo listing).")
  in
  let doc = "build a stack and list a directory through it" in
  Cmd.v (Cmd.info "ls" ~doc) Term.(const run_ls $ layers_arg $ dir $ files)

let fsck_cmd =
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~docv:"N" ~doc:"Workload size.")
  in
  let journal =
    Arg.(value & flag & info [ "journal" ] ~doc:"Format the volume with a write-ahead journal.")
  in
  let crash_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-at-write" ] ~docv:"N"
          ~doc:"Inject a fail-stop crash at the N-th device write of the workload.")
  in
  let no_recover =
    Arg.(
      value & flag
      & info [ "no-recover" ] ~doc:"Skip journal replay before checking (show raw crash damage).")
  in
  let verify_checksums =
    Arg.(
      value & flag
      & info [ "verify-checksums" ]
          ~doc:"Also hash every in-use block and compare against the checksum \
                region (reported as checksum=N in the verdict line).")
  in
  let doc =
    "run a workload, fsck the volume, and print a machine-readable verdict \
     (exit 1 on inconsistencies)"
  in
  Cmd.v (Cmd.info "fsck" ~doc)
    Term.(const run_fsck $ ops $ journal $ crash_at $ no_recover $ verify_checksums)

let crash_cmd =
  let ops =
    Arg.(value & opt int 40 & info [ "ops" ] ~docv:"N" ~doc:"Workload operations per run.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic workload/fault seed.")
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ] ~docv:"K" ~doc:"Crash at every K-th device write (default every write).")
  in
  let clients =
    Arg.(
      value & opt int 1
      & info [ "clients" ] ~docv:"C"
          ~doc:"Run the workload as C concurrently scheduled clients ($(docv) \
                operations each); recovery is verified against per-file \
                version histories.")
  in
  let sync_heavy =
    Arg.(
      value & flag
      & info [ "sync-heavy" ]
          ~doc:"Sync every 2 ops instead of 5, so crash points land inside \
                commit (and, with --clients, group-commit leader/follower) \
                windows.")
  in
  let no_journal =
    Arg.(value & flag & info [ "no-journal" ] ~doc:"Format without a journal (expect damage).")
  in
  let no_checksums =
    Arg.(
      value & flag
      & info [ "no-checksums" ]
          ~doc:"Format without the per-block checksum region (damage the \
                structural fsck cannot see then goes undetected).")
  in
  let torn =
    Arg.(value & flag & info [ "torn" ] ~doc:"Make the crashing write a torn (partial) write.")
  in
  let expect_inconsistent =
    Arg.(
      value & flag
      & info [ "expect-inconsistent" ]
          ~doc:"Invert the verdict: exit 0 only if the sweep finds at least one \
                lost or corrupt state (for exercising the injector without a journal).")
  in
  let doc =
    "sweep fail-stop crashes over every device write of a workload and verify \
     recovery (journal on: every synced write must survive and fsck must be clean)"
  in
  Cmd.v (Cmd.info "crash" ~doc)
    Term.(
      const run_crash $ ops $ seed $ stride $ clients $ sync_heavy $ no_journal
      $ no_checksums $ torn $ expect_inconsistent)

let scrub_cmd =
  let ops =
    Arg.(value & opt int 14 & info [ "ops" ] ~docv:"N" ~doc:"Workload operations per run.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic workload/fault seed.")
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ] ~docv:"K"
          ~doc:"Inject at every K-th device I/O (default every one).")
  in
  let clients =
    Arg.(
      value & opt int 1
      & info [ "clients" ] ~docv:"C"
          ~doc:"Run the workload as C concurrently scheduled clients ($(docv) \
                operations each).")
  in
  let no_checksums =
    Arg.(
      value & flag
      & info [ "no-checksums" ]
          ~doc:"Format without the per-block checksum region (bit rot in file \
                data is then served silently).")
  in
  let mirror =
    Arg.(
      value & flag
      & info [ "mirror" ]
          ~doc:"Run the workload through a mirror of two volumes and corrupt \
                the primary twin (expect self-healing repairs).")
  in
  let expect_undetected =
    Arg.(
      value & flag
      & info [ "expect-undetected" ]
          ~doc:"Invert the verdict: exit 0 only if the sweep served corrupt \
                bytes silently at least once (the checksums-off control).")
  in
  let doc =
    "sweep silent-corruption faults (bit rot, misdirected writes, lost writes) \
     over every device I/O of a workload and verify each one is detected, \
     repaired, or absorbed — never silently served"
  in
  Cmd.v (Cmd.info "scrub" ~doc)
    Term.(
      const run_scrub $ ops $ seed $ stride $ clients $ no_checksums $ mirror
      $ expect_undetected)

let failover_cmd =
  let ops =
    Arg.(value & opt int 40 & info [ "ops" ] ~docv:"N" ~doc:"Workload operations per run.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic workload seed.")
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ] ~docv:"K"
          ~doc:"Kill at every K-th op boundary (default every op).")
  in
  let clients =
    Arg.(
      value & opt int 1
      & info [ "clients" ] ~docv:"C"
          ~doc:"Run the workload as C concurrent scheduler clients; the kill \
                lands at a global op boundary while the others keep calling \
                through Sp_avail deadlines and retries.")
  in
  let deadline_ms =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-operation deadline (virtual milliseconds) enforced in \
                concurrent mode; an overrun fails the point.  Defaults to \
                max(1000, 100 x clients), since queueing makes tail latency \
                scale with the client count.")
  in
  let no_supervisor =
    Arg.(
      value & flag
      & info [ "no-supervisor" ]
          ~doc:"Run the same kills against an unsupervised stack (expect unavailable).")
  in
  let expect_unavailable =
    Arg.(
      value & flag
      & info [ "expect-unavailable" ]
          ~doc:"Invert the verdict: exit 0 only if every crash point left the \
                stack unavailable (the unsupervised control).")
  in
  let doc =
    "sweep layer-domain fail-stops over every (layer, op) point of a workload \
     and verify the supervisor restarts the layer with no synced byte lost"
  in
  Cmd.v (Cmd.info "failover" ~doc)
    Term.(
      const run_failover $ ops $ seed $ stride $ clients $ deadline_ms
      $ no_supervisor $ expect_unavailable)

let dfs_sweep_cmd =
  let nodes =
    Arg.(
      value & opt int 3
      & info [ "nodes" ] ~docv:"N" ~doc:"Shard server nodes in the cluster.")
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"C"
          ~doc:"Concurrent scheduler clients, one lease cache each.")
  in
  let ops =
    Arg.(
      value & opt int 48
      & info [ "ops" ] ~docv:"N" ~doc:"Total workload op budget per point.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic workload seed.")
  in
  let stride =
    Arg.(
      value & opt int 7
      & info [ "stride" ] ~docv:"K"
          ~doc:"Fault at every K-th global op boundary (1 = all of them).")
  in
  let partition =
    Arg.(
      value & flag
      & info [ "partition" ]
          ~doc:"Instead of killing shard domains, cut the network between a \
                rotating victim client and the hot shard: warm lease-held \
                service must continue until the lease expires, then fail \
                loudly, never stalely.")
  in
  let no_leases =
    Arg.(
      value & flag
      & info [ "no-leases" ]
          ~doc:"Run leaseless (no client caching): the control arm.  With \
                --partition, every point is expected unavailable.")
  in
  let deadline_ms =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-operation deadline (virtual milliseconds).  Defaults to \
                max(1000, 100 x clients).")
  in
  let expect_unavailable =
    Arg.(
      value & flag
      & info [ "expect-unavailable" ]
          ~doc:"Invert the verdict: exit 0 only if every point ended \
                unavailable (the leaseless partition control).")
  in
  let doc =
    "sweep shard-node kills (or client partitions) over every strided op \
     boundary of a concurrent workload against the sharded DFS and verify \
     durability, lease safety and bounded recovery on every shard"
  in
  Cmd.v (Cmd.info "dfs-sweep" ~doc)
    Term.(
      const run_dfs_sweep $ nodes $ clients $ ops $ seed $ stride $ partition
      $ no_leases $ deadline_ms $ expect_unavailable)

let scale_cmd =
  let clients =
    Arg.(
      value & opt int 64
      & info [ "clients" ] ~docv:"C"
          ~doc:"Concurrent clients, each a scheduler task on the shared stack.")
  in
  let budget =
    Arg.(
      value & opt int 10000
      & info [ "budget" ] ~docv:"N"
          ~doc:"Total operation budget for the row (each client runs \
                budget/clients ops, at least one).")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic workload seed.")
  in
  let dir_heavy =
    Arg.(
      value & flag
      & info [ "dir-heavy" ]
          ~doc:"Swap the op mix for a namespace-heavy one: opens by compound \
                name, cursor readdir batches, and create/remove churn \
                against a shared indexed directory.")
  in
  let sync_heavy =
    Arg.(
      value & flag
      & info [ "sync-heavy" ]
          ~doc:"Swap the op mix for a durability-heavy one on a journaled \
                base: every op writes 1KB and every 4th op syncs, so \
                concurrent syncs batch into journal group commits (reported \
                as syncs/commits/absorbed in the SCALE line).")
  in
  let stack =
    let stacks = [ ("base", `Base); ("deep", `Deep) ] in
    Arg.(
      value
      & opt (enum stacks) `Base
      & info [ "stack" ] ~docv:"STACK"
          ~doc:"Stack to drive: base (the two-domain SFS) or deep \
                (compression over a mirror of two two-domain bases).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Exit 1 unless contention actually formed: queue time recorded \
                and p99 strictly above p50 (with --sync-heavy and clients > \
                1, also at least one absorbed sync).")
  in
  let doc =
    "run N concurrent clients over one shared stack and report throughput and \
     tail latency (p50/p99/p999) under the 1993 cost model"
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const run_scale $ clients $ budget $ seed $ dir_heavy $ sync_heavy
      $ stack $ check)

let versions_cmd =
  let doc = "demonstrate the file-versioning layer" in
  Cmd.v (Cmd.info "versions" ~doc) Term.(const run_versions $ const ())

let profile_cmd =
  let scenario =
    let scenarios = [ ("demo", `Demo); ("stack", `Stack); ("tables", `Tables) ] in
    Arg.(
      required
      & pos 0 (some (enum scenarios)) None
      & info [] ~docv:"SCENARIO" ~doc:"Scenario to profile: demo, stack or tables.")
  in
  let ops =
    Arg.(value & opt int 100 & info [ "ops" ] ~docv:"N" ~doc:"Operations (stack only).")
  in
  let size =
    Arg.(value & opt int 4096 & info [ "size" ] ~docv:"BYTES" ~doc:"I/O size (stack only).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Also write a Chrome trace-event JSON file (chrome://tracing, Perfetto).")
  in
  let capacity =
    Arg.(
      value & opt int 262144
      & info [ "capacity" ] ~docv:"SPANS"
          ~doc:"Span ring-buffer capacity; oldest spans drop beyond this.")
  in
  let doc =
    "run a scenario under span tracing and print the per-layer time attribution"
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run_profile $ scenario $ layers_arg $ ops $ size $ trace_out $ capacity)

let main =
  let doc = "Spring extensible file systems (SOSP '93) — simulation driver" in
  Cmd.group (Cmd.info "springfs" ~version:"1.0.0" ~doc)
    [
      stack_cmd; tables_cmd; demo_cmd; ls_cmd; fsck_cmd; crash_cmd; scrub_cmd;
      failover_cmd; dfs_sweep_cmd; scale_cmd;
      versions_cmd; profile_cmd;
    ]

let () = exit (Cmd.eval' main)
